//! Cluster orchestration: spawn an N-node topology, feed it a workload,
//! watch it converge, reconcile the per-node ledgers into a cluster-wide
//! SP verdict, and emit a JSON run report.
//!
//! ## The shard tree (PR 8)
//!
//! The control plane is a two-level tree. `orch.main` spawns K
//! `shard.super` threads, each supervising a contiguous block of nodes
//! (threads in [`RunMode::Inproc`], OS processes in [`RunMode::Proc`]).
//! A shard polls its nodes' control pipes directly — no per-node reader
//! threads — so a whole run costs `nodes + shards + 1` threads, and the
//! 100-node topologies that motivated this PR stay cheap to supervise.
//!
//! Shards pre-merge what flows upward: per-node status lines become one
//! [`ShardStatus`] sum per period, and per-node reports become one
//! [`ShardReport`] whose [`ShardSummary`] already carries the merged
//! histograms and counters. The orchestrator then works O(K) per status
//! tick and O(merged) at reconciliation — it concatenates the shard
//! ledger lists and calls `reconcile_ledgers` exactly once (the SP
//! verdict is a global join; only the *assembly* shards, never the
//! verdict).
//!
//! Convergence is judged on shard sums. Every summed quantity
//! (generated, delivered, held, done-count) is per-node monotone during
//! drain, so "all shards report identical sums for
//! `stable_snapshots` consecutive periods" is exactly as sound as the
//! old per-node snapshot comparison, at a K-th of the traffic.

use crate::chaos::{ChaosSpec, PartitionSpec};
use crate::clients::{ClientMutation, ClientSpec};
use crate::conc::COMPONENT;
use crate::evloop::{
    raise_nofile_limit, set_nonblocking_fd, CtrlPipe, PollSet, POLLERR, POLLHUP, POLLIN, POLLNVAL,
    POLLOUT,
};
use crate::frame::ghost_to_wire;
use crate::node::{node_main, parse_report_body, ListenSpec, NodeConfig, NodeReport};
use crate::telemetry::{LogHistogram, NodeCounters};
use crate::tuning::TUNING;
use crate::workload::{is_ack_ghost, WorkloadKind, WorkloadSpec};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use ssmfp_core::conc::{register_thread, spawn_registered, tracked_channel, TrackedSender};
use ssmfp_core::{reconcile_clients, reconcile_ledgers, ClientVerdict, ClusterVerdict, NodeLedger};
use ssmfp_topology::{Graph, NodeId};
use std::io::{self, Read, Write};
use std::ops::Range;
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// How nodes are launched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunMode {
    /// Threads inside this process.
    Inproc,
    /// One OS process per node, running `<exe> --node-worker …`.
    Proc {
        /// Path to the `ssmfp-cluster` binary.
        exe: PathBuf,
    },
}

/// A full cluster run specification.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Topology label for the report.
    pub topology: String,
    /// The graph itself.
    pub graph: Graph,
    /// Run seed.
    pub seed: u64,
    /// Per-node workload.
    pub workload: WorkloadSpec,
    /// Link chaos.
    pub chaos: ChaosSpec,
    /// Socket flavour.
    pub listen: ListenSpec,
    /// Client mode: multiplex this many logical clients over the nodes
    /// and audit them per-client at reconciliation.
    pub clients: Option<ClientSpec>,
    /// Orchestrator shards (supervised node groups); clamped to `1..=n`.
    pub shards: usize,
    /// Launch mode.
    pub mode: RunMode,
    /// Give up (converged = false) after this long.
    pub timeout: Duration,
}

/// One shard's pre-merged telemetry: the node-group totals the
/// orchestrator folds into the run report.
#[derive(Debug, Clone, Default)]
pub struct ShardSummary {
    /// Shard index.
    pub shard: usize,
    /// Nodes in the shard.
    pub nodes: usize,
    /// Primaries delivered inside the shard.
    pub primaries_delivered: u64,
    /// Merged one-way latency histogram (µs).
    pub latency: LogHistogram,
    /// Merged frames-per-write histogram.
    pub batch: LogHistogram,
    /// Summed per-node counters.
    pub counters: NodeCounters,
    /// Client mode: merged ack round-trip histogram.
    pub client_rtt: LogHistogram,
    /// Client mode: merged fairness spread (one sample per session —
    /// its mean RTT — merged bucket-wise, so shard and root work stay
    /// O(buckets) however many clients the run hosts).
    pub client_fair: LogHistogram,
    /// Client mode: sessions hosted in the shard.
    pub clients: u64,
    /// Client mode: acked primaries in the shard.
    pub clients_completed: u64,
}

/// Everything a shard sends upward at the end of a run.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Shard index.
    pub shard: usize,
    /// The pre-merged totals.
    pub summary: ShardSummary,
    /// The raw per-node reports (ledgers ride here to the single global
    /// reconciliation).
    pub reports: Vec<NodeReport>,
}

/// One shard's merged status snapshot (all fields are sums over the
/// shard's nodes; `done` counts nodes that finished issuing).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStatus {
    /// Nodes in the shard.
    pub nodes: u64,
    /// Nodes done issuing their workload.
    pub done: u64,
    /// Messages generated.
    pub generated: u64,
    /// Messages delivered.
    pub delivered: u64,
    /// Messages still held.
    pub held: u64,
}

/// Shard → orchestrator upstream messages (the `orch.shard` channel).
enum ShardUp {
    /// All shard nodes bound their listeners.
    Ready(Vec<(NodeId, String)>),
    /// Periodic merged status.
    Status(ShardStatus),
    /// Final report (boxed: the reports dwarf the other variants).
    Done(Box<ShardReport>),
    /// The shard cannot finish the run.
    Error(String),
}

/// Outcome of one cluster run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Topology label.
    pub topology: String,
    /// Node count.
    pub n: usize,
    /// Run seed.
    pub seed: u64,
    /// Orchestrator shards the run used.
    pub shards: usize,
    /// Whether the cluster quiesced before the timeout.
    pub converged: bool,
    /// Wall-clock seconds from `start` to convergence (or timeout).
    pub wall_s: f64,
    /// Cluster-wide SP reconciliation.
    pub verdict: ClusterVerdict,
    /// Primaries delivered end-to-end.
    pub primaries_delivered: u64,
    /// Primaries delivered per wall-clock second.
    pub throughput: f64,
    /// Merged one-way latency histogram (µs).
    pub latency: LogHistogram,
    /// Merged frames-per-write histogram (coalescing).
    pub batch: LogHistogram,
    /// Summed per-node counters.
    pub counters: NodeCounters,
    /// Client mode: the per-client exactly-once + FIFO verdict.
    pub client_verdict: Option<ClientVerdict>,
    /// Client mode: merged ack round-trip histogram (µs).
    pub client_rtt: LogHistogram,
    /// Client mode: merged fairness spread (one sample per session).
    pub client_fair: LogHistogram,
    /// Client mode: logical clients hosted across the cluster.
    pub clients: u64,
    /// Client mode: acked primaries across all clients.
    pub clients_completed: u64,
    /// The per-shard pre-merged totals (the top-level numbers above are
    /// folds of exactly these — pinned by a unit test).
    pub shard_summaries: Vec<ShardSummary>,
    /// The raw per-node reports, ordered by node id.
    pub nodes: Vec<NodeReport>,
}

impl RunReport {
    /// Whether the run met the tentpole bar: converged with a clean
    /// cluster-wide SP verdict — and, in client mode, a clean
    /// per-client verdict too.
    pub fn clean(&self) -> bool {
        self.converged
            && self.verdict.clean()
            && self
                .client_verdict
                .as_ref()
                .is_none_or(ClientVerdict::clean)
    }

    /// Hand-rolled JSON (the workspace carries no serde).
    pub fn to_json(&self) -> String {
        let v = &self.verdict;
        let violations: Vec<String> = v.violations.iter().map(|x| format!("{:?}", x)).collect();
        let c = &self.counters;
        let clients_json = match &self.client_verdict {
            None => String::new(),
            Some(cv) => {
                let cviol: Vec<String> = cv
                    .violations
                    .iter()
                    .map(|x| format!("\"{}\"", format!("{x:?}").replace('"', "'")))
                    .collect();
                format!(
                    concat!(
                        ",\n  \"clients\": {{\"hosted\": {}, \"completed\": {}, ",
                        "\"distinct\": {}, \"stamped\": {}, \"exactly_once\": {}, ",
                        "\"in_flight\": {}, \"violations\": {}, \"violation_list\": [{}], ",
                        "\"rtt_us\": {{\"count\": {}, \"mean\": {:.1}, \"p50\": {}, ",
                        "\"p99\": {}, \"max\": {}}}, ",
                        "\"fairness_us\": {{\"count\": {}, \"p50\": {}, \"p99\": {}, ",
                        "\"max\": {}}}}}"
                    ),
                    self.clients,
                    self.clients_completed,
                    cv.clients,
                    cv.stamped,
                    cv.exactly_once,
                    cv.in_flight,
                    cv.violations.len(),
                    cviol.join(", "),
                    self.client_rtt.count(),
                    self.client_rtt.mean(),
                    self.client_rtt.quantile(0.50),
                    self.client_rtt.quantile(0.99),
                    self.client_rtt.max(),
                    self.client_fair.count(),
                    self.client_fair.quantile(0.50),
                    self.client_fair.quantile(0.99),
                    self.client_fair.max(),
                )
            }
        };
        format!(
            concat!(
                "{{\n",
                "  \"topology\": \"{}\",\n",
                "  \"n\": {},\n",
                "  \"seed\": {},\n",
                "  \"shards\": {},\n",
                "  \"converged\": {},\n",
                "  \"wall_s\": {:.4},\n",
                "  \"sp\": {{\"generated\": {}, \"exactly_once\": {}, \"in_flight\": {}, ",
                "\"invalid_delivered\": {}, \"violations\": {}, \"violation_list\": [{}]}},\n",
                "  \"primaries_delivered\": {},\n",
                "  \"throughput_msgs_per_s\": {:.1},\n",
                "  \"latency_us\": {{\"count\": {}, \"mean\": {:.1}, \"p50\": {}, \"p95\": {}, ",
                "\"p99\": {}, \"p999\": {}, \"max\": {}}},\n",
                "  \"counters\": {{\"frames_sent\": {}, \"frames_received\": {}, ",
                "\"heartbeats_sent\": {}, \"reconnects\": {}, \"chaos_dropped\": {}, ",
                "\"chaos_duplicated\": {}, \"chaos_reordered\": {}, \"partition_dropped\": {}}},\n",
                "  \"io\": {{\"write_syscalls\": {}, \"read_syscalls\": {}, ",
                "\"conn_frames_dropped\": {}, \"frames_per_write\": {{\"count\": {}, ",
                "\"mean\": {:.2}, \"p50\": {}, \"p99\": {}, \"max\": {}}}}}{}\n",
                "}}"
            ),
            self.topology,
            self.n,
            self.seed,
            self.shards,
            self.converged,
            self.wall_s,
            v.generated,
            v.exactly_once,
            v.in_flight,
            v.invalid_delivered,
            v.violations.len(),
            violations
                .iter()
                .map(|s| format!("\"{}\"", s.replace('"', "'")))
                .collect::<Vec<_>>()
                .join(", "),
            self.primaries_delivered,
            self.throughput,
            self.latency.count(),
            self.latency.mean(),
            self.latency.quantile(0.50),
            self.latency.quantile(0.95),
            self.latency.quantile(0.99),
            self.latency.quantile(0.999),
            self.latency.max(),
            c.frames_sent,
            c.frames_received,
            c.heartbeats_sent,
            c.reconnects,
            c.chaos_dropped,
            c.chaos_duplicated,
            c.chaos_reordered,
            c.partition_dropped,
            c.write_syscalls,
            c.read_syscalls,
            c.conn_frames_dropped,
            self.batch.count(),
            self.batch.mean(),
            self.batch.quantile(0.50),
            self.batch.quantile(0.99),
            self.batch.max(),
            clients_json,
        )
    }
}

/// Picks the partitioned edge for a run seed: a deterministic function of
/// `(graph, seed)`, so process and thread modes agree.
pub fn pick_partition(graph: &Graph, seed: u64, from_arrival: u64, len: u64) -> PartitionSpec {
    let edges = graph.edges();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x9A27_11E5_0DD5_EEDF);
    let (a, b) = edges[rng.gen_range(0..edges.len())];
    PartitionSpec {
        a,
        b,
        from_arrival,
        len,
    }
}

/// Splits `0..n` into at most `shards` contiguous non-empty blocks.
/// The effective shard count is the returned length.
pub fn shard_ranges(n: usize, shards: usize) -> Vec<Range<usize>> {
    let k = shards.clamp(1, n.max(1));
    let chunk = n.div_ceil(k);
    (0..k)
        .map(|s| (s * chunk).min(n)..((s + 1) * chunk).min(n))
        .filter(|r| !r.is_empty())
        .collect()
}

/// Folds a node group's reports into its pre-merged [`ShardSummary`].
fn summarize(shard: usize, reports: &[NodeReport]) -> ShardSummary {
    let mut s = ShardSummary {
        shard,
        nodes: reports.len(),
        ..ShardSummary::default()
    };
    for r in reports {
        s.latency.merge(&r.latency);
        s.batch.merge(&r.batch);
        s.primaries_delivered += r.delivered.iter().filter(|&&g| !is_ack_ghost(g)).count() as u64;
        s.counters.add(&r.counters);
        s.client_rtt.merge(&r.client_rtt);
        s.client_fair.merge(&r.client_fair);
        s.clients += r.clients;
        s.clients_completed += r.clients_completed;
    }
    s
}

/// Folds shard summaries into the run-level client totals. This is the
/// *only* client aggregation the root does: K bucket-wise histogram
/// merges plus K additions — O(shards · buckets), independent of how
/// many clients the run hosted (pinned by a unit test).
fn fold_client_totals(summaries: &[ShardSummary]) -> (LogHistogram, LogHistogram, u64, u64) {
    let mut rtt = LogHistogram::new();
    let mut fair = LogHistogram::new();
    let mut clients = 0u64;
    let mut completed = 0u64;
    for s in summaries {
        rtt.merge(&s.client_rtt);
        fair.merge(&s.client_fair);
        clients += s.clients;
        completed += s.clients_completed;
    }
    (rtt, fair, clients, completed)
}

/// Serializes a node config into `--node-worker` CLI arguments (the
/// inverse of [`parse_node_args`]).
pub fn node_args(cfg: &NodeConfig) -> Vec<String> {
    let edges = cfg
        .edges
        .iter()
        .map(|(a, b)| format!("{a}-{b}"))
        .collect::<Vec<_>>()
        .join(",");
    let listen = match &cfg.listen {
        ListenSpec::Uds { dir } => format!("uds:{}", dir.display()),
        ListenSpec::Tcp => "tcp".to_string(),
    };
    let workload = match cfg.workload.kind {
        WorkloadKind::Open { rate_per_sec } => {
            format!("open:{rate_per_sec}:{}", cfg.workload.messages)
        }
        WorkloadKind::Closed { outstanding } => {
            format!("closed:{outstanding}:{}", cfg.workload.messages)
        }
    };
    let mut chaos = format!("{}:{}", cfg.chaos.seed, cfg.chaos.faults_per_link);
    if let Some(p) = cfg.chaos.partition {
        chaos.push_str(&format!(":{}-{}:{}:{}", p.a, p.b, p.from_arrival, p.len));
    }
    let mut args = vec![
        "--id".into(),
        cfg.node.to_string(),
        "--n".into(),
        cfg.n.to_string(),
        "--edges".into(),
        edges,
        "--seed".into(),
        cfg.seed.to_string(),
        "--listen".into(),
        listen,
        "--workload".into(),
        workload,
        "--chaos".into(),
        chaos,
    ];
    if let Some(c) = &cfg.clients {
        args.push("--clients".into());
        args.push(c.clients.to_string());
        args.push("--client-load".into());
        args.push(match c.load.kind {
            WorkloadKind::Open { rate_per_sec } => {
                format!("open:{rate_per_sec}:{}", c.load.messages)
            }
            WorkloadKind::Closed { outstanding } => {
                format!("closed:{outstanding}:{}", c.load.messages)
            }
        });
        if let Some(ClientMutation::DuplicateStamp) = c.mutation {
            args.push("--client-mutation".into());
            args.push("dup-stamp".into());
        }
    }
    args
}

/// Parses the arguments produced by [`node_args`]. `Err` carries a usage
/// message.
pub fn parse_node_args(args: &[String]) -> Result<NodeConfig, String> {
    let mut cfg = NodeConfig {
        node: usize::MAX,
        n: 0,
        edges: Vec::new(),
        seed: 0,
        listen: ListenSpec::Tcp,
        workload: WorkloadSpec {
            kind: WorkloadKind::Closed { outstanding: 1 },
            messages: 0,
        },
        chaos: ChaosSpec::none(),
        clients: None,
    };
    let mut client_count: Option<u64> = None;
    let mut client_load: Option<WorkloadSpec> = None;
    let mut client_mutation: Option<ClientMutation> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--id" => cfg.node = val()?.parse().map_err(|e| format!("--id: {e}"))?,
            "--n" => cfg.n = val()?.parse().map_err(|e| format!("--n: {e}"))?,
            "--edges" => {
                for pair in val()?.split(',') {
                    let (a, b) = pair
                        .split_once('-')
                        .ok_or_else(|| format!("bad edge {pair:?}"))?;
                    cfg.edges.push((
                        a.parse().map_err(|e| format!("edge: {e}"))?,
                        b.parse().map_err(|e| format!("edge: {e}"))?,
                    ));
                }
            }
            "--seed" => cfg.seed = val()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--listen" => {
                let v = val()?;
                cfg.listen = if v == "tcp" {
                    ListenSpec::Tcp
                } else if let Some(dir) = v.strip_prefix("uds:") {
                    ListenSpec::Uds {
                        dir: PathBuf::from(dir),
                    }
                } else {
                    return Err(format!("bad --listen {v:?}"));
                };
            }
            "--workload" => cfg.workload = parse_workload(val()?)?,
            "--chaos" => cfg.chaos = parse_chaos(val()?)?,
            "--clients" => {
                client_count = Some(val()?.parse().map_err(|e| format!("--clients: {e}"))?)
            }
            "--client-load" => client_load = Some(parse_workload(val()?)?),
            "--client-mutation" => {
                client_mutation = Some(match val()? {
                    "dup-stamp" => ClientMutation::DuplicateStamp,
                    other => return Err(format!("unknown client mutation {other:?}")),
                })
            }
            other => return Err(format!("unknown node-worker flag {other:?}")),
        }
    }
    if cfg.node == usize::MAX || cfg.n == 0 || cfg.edges.is_empty() {
        return Err("--id, --n and --edges are required".into());
    }
    if let Some(clients) = client_count {
        cfg.clients = Some(ClientSpec {
            clients,
            load: client_load.ok_or("--clients needs --client-load")?,
            mutation: client_mutation,
        });
    } else if client_load.is_some() || client_mutation.is_some() {
        return Err("--client-load/--client-mutation need --clients".into());
    }
    Ok(cfg)
}

/// Parses `open:<rate>:<msgs>` / `closed:<k>:<msgs>`.
pub fn parse_workload(s: &str) -> Result<WorkloadSpec, String> {
    let parts: Vec<&str> = s.split(':').collect();
    let bad = || format!("bad workload {s:?} (want open:<rate>:<msgs> or closed:<k>:<msgs>)");
    if parts.len() != 3 {
        return Err(bad());
    }
    let messages: u64 = parts[2].parse().map_err(|_| bad())?;
    let kind = match parts[0] {
        "open" => WorkloadKind::Open {
            rate_per_sec: parts[1].parse().map_err(|_| bad())?,
        },
        "closed" => WorkloadKind::Closed {
            outstanding: parts[1].parse().map_err(|_| bad())?,
        },
        _ => return Err(bad()),
    };
    Ok(WorkloadSpec { kind, messages })
}

/// Parses `<seed>:<faults>[:<a>-<b>:<from>:<len>]`.
pub fn parse_chaos(s: &str) -> Result<ChaosSpec, String> {
    let parts: Vec<&str> = s.split(':').collect();
    let bad = || format!("bad chaos {s:?} (want <seed>:<faults>[:<a>-<b>:<from>:<len>])");
    if parts.len() != 2 && parts.len() != 5 {
        return Err(bad());
    }
    let mut spec = ChaosSpec {
        seed: parts[0].parse().map_err(|_| bad())?,
        faults_per_link: parts[1].parse().map_err(|_| bad())?,
        partition: None,
    };
    if parts.len() == 5 {
        let (a, b) = parts[2].split_once('-').ok_or_else(bad)?;
        spec.partition = Some(PartitionSpec {
            a: a.parse().map_err(|_| bad())?,
            b: b.parse().map_err(|_| bad())?,
            from_arrival: parts[3].parse().map_err(|_| bad())?,
            len: parts[4].parse().map_err(|_| bad())?,
        });
    }
    Ok(spec)
}

fn node_config(spec: &ClusterSpec, p: usize) -> NodeConfig {
    NodeConfig {
        node: p,
        n: spec.graph.n(),
        edges: spec.graph.edges().to_vec(),
        seed: spec.seed,
        listen: spec.listen.clone(),
        workload: spec.workload,
        chaos: spec.chaos,
        clients: spec.clients,
    }
}

// ---------------------------------------------------------------------------
// Shard supervisor
// ---------------------------------------------------------------------------

/// A shard's handle on one node's control pipe and lifetime.
enum NodeCtrl {
    Thread {
        /// The supervisor's end of the socketpair (nonblocking).
        pipe: UnixStream,
        join: JoinHandle<io::Result<NodeReport>>,
    },
    Proc {
        child: Child,
        /// Parent's write end of the child's stdin pipe (nonblocking).
        stdin: Option<ChildStdin>,
        /// Parent's read end of the child's stdout pipe (nonblocking).
        stdout: ChildStdout,
    },
}

impl NodeCtrl {
    fn read_fd(&self) -> i32 {
        match self {
            NodeCtrl::Thread { pipe, .. } => pipe.as_raw_fd(),
            NodeCtrl::Proc { stdout, .. } => stdout.as_raw_fd(),
        }
    }

    fn write_fd(&self) -> i32 {
        match self {
            NodeCtrl::Thread { pipe, .. } => pipe.as_raw_fd(),
            NodeCtrl::Proc { stdin, .. } => stdin.as_ref().expect("stdin open").as_raw_fd(),
        }
    }

    fn read_once(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            NodeCtrl::Thread { pipe, .. } => (&*pipe).read(buf),
            NodeCtrl::Proc { stdout, .. } => stdout.read(buf),
        }
    }

    fn write_some(&mut self, bytes: &[u8]) -> io::Result<usize> {
        match self {
            NodeCtrl::Thread { pipe, .. } => (&*pipe).write(bytes),
            NodeCtrl::Proc { stdin, .. } => stdin.as_mut().expect("stdin open").write(bytes),
        }
    }

    fn finish(self) {
        match self {
            NodeCtrl::Thread { pipe, join } => {
                drop(pipe);
                let _ = join.join();
            }
            NodeCtrl::Proc {
                mut child, stdin, ..
            } => {
                drop(stdin);
                let deadline = Instant::now() + TUNING.proc_exit_grace();
                loop {
                    match child.try_wait() {
                        Ok(Some(_)) => break,
                        Ok(None) if Instant::now() < deadline => {
                            thread::sleep(TUNING.proc_wait_poll());
                        }
                        _ => {
                            let _ = child.kill();
                            let _ = child.wait();
                            break;
                        }
                    }
                }
            }
        }
    }
}

#[derive(Clone, Copy, Default)]
struct NodeStatus {
    done: bool,
    generated: u64,
    delivered: u64,
    held: u64,
}

/// A shard's per-node supervision state.
struct NodeSlot {
    id: NodeId,
    ctrl: NodeCtrl,
    /// Read accumulator (partial control lines).
    acc: Vec<u8>,
    /// Staged downward control bytes, written on `POLLOUT` only.
    staged: Vec<u8>,
    staged_at: usize,
    eof: bool,
    ready: Option<String>,
    status: NodeStatus,
    /// Everything the node says after `stop` (the report block).
    lines: Vec<String>,
    ended: bool,
}

impl NodeSlot {
    fn new(id: NodeId, ctrl: NodeCtrl) -> Self {
        NodeSlot {
            id,
            ctrl,
            acc: Vec::new(),
            staged: Vec::new(),
            staged_at: 0,
            eof: false,
            ready: None,
            status: NodeStatus::default(),
            lines: Vec::new(),
            ended: false,
        }
    }

    fn stage(&mut self, line: &str) {
        self.staged.extend_from_slice(line.as_bytes());
        self.staged.push(b'\n');
    }
}

#[derive(PartialEq, Clone, Copy)]
enum Phase {
    Ready,
    Running,
    Reporting,
}

/// Splits complete lines out of a byte accumulator (trimmed; empty lines
/// dropped).
fn take_lines(acc: &mut Vec<u8>) -> Vec<String> {
    let mut out = Vec::new();
    while let Some(nl) = acc.iter().position(|&b| b == b'\n') {
        let line: Vec<u8> = acc.drain(..=nl).collect();
        let text = String::from_utf8_lossy(&line[..nl]).trim_end().to_string();
        if !text.is_empty() {
            out.push(text);
        }
    }
    out
}

fn spawn_proc_node(exe: &PathBuf, cfg: &NodeConfig) -> io::Result<NodeCtrl> {
    let mut child = Command::new(exe)
        .arg("--node-worker")
        .args(node_args(cfg))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()?;
    let stdin = child.stdin.take().expect("piped stdin");
    let stdout = child.stdout.take().expect("piped stdout");
    // Only the parent's pipe ends go nonblocking: the child's stdio fds
    // are separate file descriptions, so the node's blocking ctrl writes
    // are untouched.
    set_nonblocking_fd(stdin.as_raw_fd(), true)?;
    set_nonblocking_fd(stdout.as_raw_fd(), true)?;
    Ok(NodeCtrl::Proc {
        child,
        stdin: Some(stdin),
        stdout,
    })
}

/// One shard supervisor: spawns its node group, polls every control pipe
/// plus the orchestrator socketpair in one `poll(2)` set, forwards
/// control lines downward (staged, `POLLOUT`-gated — the declared timed
/// write), and pre-merges status and reports upward.
fn shard_main(
    shard: usize,
    cfgs: Vec<NodeConfig>,
    mode: RunMode,
    orch: UnixStream,
    up: TrackedSender<(usize, ShardUp)>,
) {
    register_thread(COMPONENT, "shard.super");
    let send_up = |msg: ShardUp| {
        // Untimed `ChanSend(orch.shard)` — the declared upstream edge.
        // A disconnected receiver means the orchestrator already gave
        // up; keep going so the node handles still get finished.
        let _ = up.send((shard, msg));
    };

    // --- spawn the node group ---
    let mut slots: Vec<NodeSlot> = Vec::with_capacity(cfgs.len());
    for cfg in cfgs {
        let id = cfg.node;
        let ctrl = match &mode {
            RunMode::Inproc => match UnixStream::pair() {
                Ok((sup_side, node_side)) => {
                    if let Err(e) = sup_side.set_nonblocking(true) {
                        send_up(ShardUp::Error(format!("nonblocking ctrl: {e}")));
                        for s in slots {
                            s.ctrl.finish();
                        }
                        return;
                    }
                    let join = spawn_registered(COMPONENT, "node.main", move || {
                        node_main(&cfg, CtrlPipe::Stream(node_side))
                    });
                    NodeCtrl::Thread {
                        pipe: sup_side,
                        join,
                    }
                }
                Err(e) => {
                    send_up(ShardUp::Error(format!("socketpair: {e}")));
                    for s in slots {
                        s.ctrl.finish();
                    }
                    return;
                }
            },
            RunMode::Proc { exe } => match spawn_proc_node(exe, &cfg) {
                Ok(c) => c,
                Err(e) => {
                    send_up(ShardUp::Error(format!("spawn node {id}: {e}")));
                    for s in slots {
                        s.ctrl.finish();
                    }
                    return;
                }
            },
        };
        slots.push(NodeSlot::new(id, ctrl));
    }

    // --- supervision loop ---
    let mut poll = PollSet::new();
    let mut scratch = vec![0u8; 16 * 1024];
    let mut orch_acc: Vec<u8> = Vec::new();
    let mut orch_eof = false;
    let mut phase = Phase::Ready;
    let mut ready_sent = false;
    let mut last_status = Instant::now();
    let mut report_deadline = Instant::now();
    let mut failed: Option<String> = None;
    loop {
        poll.clear();
        let orch_idx = if orch_eof {
            usize::MAX
        } else {
            poll.push(orch.as_raw_fd(), POLLIN)
        };
        let mut read_slots: Vec<(usize, usize)> = Vec::with_capacity(slots.len());
        let mut write_slots: Vec<(usize, usize)> = Vec::new();
        for (i, s) in slots.iter().enumerate() {
            if !s.eof {
                read_slots.push((poll.push(s.ctrl.read_fd(), POLLIN), i));
            }
            if s.staged_at < s.staged.len() {
                write_slots.push((poll.push(s.ctrl.write_fd(), POLLOUT), i));
            }
        }
        let cap = Duration::from_millis(50);
        let timeout = match phase {
            Phase::Ready => cap,
            Phase::Running => TUNING
                .status_every()
                .saturating_sub(last_status.elapsed())
                .min(cap),
            Phase::Reporting => report_deadline
                .saturating_duration_since(Instant::now())
                .min(cap),
        };
        let _ = poll.poll(Some(timeout));

        // Orchestrator lines: interpret, then forward verbatim to every
        // node. (The shard's end of the socketpair is blocking: one
        // single-shot read per POLLIN readiness never blocks.)
        if orch_idx != usize::MAX && poll.revents(orch_idx) & (POLLIN | POLLERR | POLLHUP) != 0 {
            match (&orch).read(&mut scratch) {
                Ok(0) => orch_eof = true,
                Ok(k) => {
                    orch_acc.extend_from_slice(&scratch[..k]);
                    for line in take_lines(&mut orch_acc) {
                        for s in &mut slots {
                            s.stage(&line);
                        }
                        if line.starts_with("start") && phase == Phase::Ready {
                            phase = Phase::Running;
                            last_status = Instant::now();
                        } else if line.starts_with("stop") && phase != Phase::Reporting {
                            phase = Phase::Reporting;
                            report_deadline = Instant::now() + TUNING.report_grace();
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => orch_eof = true,
            }
            if orch_eof && phase != Phase::Reporting {
                // Orchestrator gone: wind the run down cleanly.
                for s in &mut slots {
                    s.stage("stop");
                }
                phase = Phase::Reporting;
                report_deadline = Instant::now() + TUNING.report_grace();
            }
        }

        // Node lines (nonblocking fds: drain to WouldBlock).
        for &(idx, i) in &read_slots {
            if poll.revents(idx) & (POLLIN | POLLERR | POLLHUP | POLLNVAL) == 0 {
                continue;
            }
            loop {
                match slots[i].ctrl.read_once(&mut scratch) {
                    Ok(0) => {
                        slots[i].eof = true;
                        break;
                    }
                    Ok(k) => {
                        slots[i].acc.extend_from_slice(&scratch[..k]);
                        let short = k < scratch.len();
                        for line in take_lines(&mut slots[i].acc) {
                            let s = &mut slots[i];
                            if phase == Phase::Reporting {
                                if line == "end" {
                                    s.ended = true;
                                }
                                s.lines.push(line);
                            } else if let Some(a) = line.strip_prefix("ready ") {
                                s.ready = Some(a.to_string());
                            } else if let Some(rest) = line.strip_prefix("status ") {
                                let mut it = rest.split_whitespace();
                                let mut num =
                                    || it.next().and_then(|t| t.parse::<u64>().ok()).unwrap_or(0);
                                s.status = NodeStatus {
                                    done: num() == 1,
                                    generated: num(),
                                    delivered: num(),
                                    held: num(),
                                };
                            }
                        }
                        if short {
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        slots[i].eof = true;
                        break;
                    }
                }
            }
        }

        // Staged downward writes, POLLOUT-gated (the declared timed
        // `SockWrite(node.main)` edge — the shard never blocks on a
        // node).
        for &(idx, i) in &write_slots {
            if poll.revents(idx) & (POLLOUT | POLLERR | POLLHUP | POLLNVAL) == 0 {
                continue;
            }
            let s = &mut slots[i];
            while s.staged_at < s.staged.len() {
                match s.ctrl.write_some(&s.staged[s.staged_at..]) {
                    Ok(0) => break,
                    Ok(k) => s.staged_at += k,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        // Node died; the read side will surface EOF.
                        s.staged_at = s.staged.len();
                        break;
                    }
                }
            }
            if s.staged_at == s.staged.len() {
                s.staged.clear();
                s.staged_at = 0;
            }
        }

        // Phase work.
        match phase {
            Phase::Ready => {
                if !ready_sent && slots.iter().all(|s| s.ready.is_some()) {
                    let list: Vec<(NodeId, String)> = slots
                        .iter()
                        .map(|s| (s.id, s.ready.clone().expect("all ready")))
                        .collect();
                    send_up(ShardUp::Ready(list));
                    ready_sent = true;
                }
                if let Some(dead) = slots.iter().find(|s| s.eof && s.ready.is_none()) {
                    failed = Some(format!("node {} exited before ready", dead.id));
                    break;
                }
            }
            Phase::Running => {
                if last_status.elapsed() >= TUNING.status_every() {
                    last_status = Instant::now();
                    let mut st = ShardStatus {
                        nodes: slots.len() as u64,
                        ..ShardStatus::default()
                    };
                    for s in &slots {
                        st.done += u64::from(s.status.done);
                        st.generated += s.status.generated;
                        st.delivered += s.status.delivered;
                        st.held += s.status.held;
                    }
                    send_up(ShardUp::Status(st));
                }
            }
            Phase::Reporting => {
                if slots.iter().all(|s| s.ended || s.eof) {
                    break;
                }
                if Instant::now() >= report_deadline {
                    let missing = slots.iter().find(|s| !s.ended).map(|s| s.id).unwrap_or(0);
                    failed = Some(format!("node {missing} sent no report in time"));
                    break;
                }
            }
        }
    }

    // --- parse reports, send the pre-merged shard report ---
    if failed.is_none() {
        if let Some(s) = slots.iter().find(|s| !s.ended) {
            failed = Some(format!("node {} hung up before its report", s.id));
        }
    }
    match failed {
        Some(e) => send_up(ShardUp::Error(e)),
        None => {
            let mut reports: Vec<NodeReport> = Vec::with_capacity(slots.len());
            let mut ok = true;
            for s in &mut slots {
                let mut it = std::mem::take(&mut s.lines)
                    .into_iter()
                    .skip_while(|l| !l.starts_with("report "))
                    .skip(1);
                match parse_report_body(s.id, &mut it) {
                    Some(r) => reports.push(r),
                    None => {
                        send_up(ShardUp::Error(format!("node {} report unparsable", s.id)));
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                let summary = summarize(shard, &reports);
                send_up(ShardUp::Done(Box::new(ShardReport {
                    shard,
                    summary,
                    reports,
                })));
            }
        }
    }
    for s in slots {
        s.ctrl.finish();
    }
}

// ---------------------------------------------------------------------------
// Orchestrator
// ---------------------------------------------------------------------------

/// Deadline-bounded `write_all` on a nonblocking stream (the declared
/// timed `SockWrite(shard.super)` edge). Control lines are tiny next to
/// the socketpair buffer, so the poll path is cold.
fn write_all_deadline(s: &UnixStream, mut bytes: &[u8], deadline: Instant) -> io::Result<()> {
    while !bytes.is_empty() {
        match (&*s).write(bytes) {
            Ok(0) => return Err(io::Error::new(io::ErrorKind::WriteZero, "shard hung up")),
            Ok(k) => bytes = &bytes[k..],
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                let now = Instant::now();
                if now >= deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "shard not draining control writes",
                    ));
                }
                let mut ps = PollSet::new();
                ps.push(s.as_raw_fd(), POLLOUT);
                ps.poll(Some(deadline - now))?;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

fn recv_or_timeout(
    rx: &Receiver<(usize, ShardUp)>,
    deadline: Instant,
) -> io::Result<Option<(usize, ShardUp)>> {
    let now = Instant::now();
    if now >= deadline {
        return Ok(None);
    }
    match rx.recv_timeout(deadline - now) {
        Ok(v) => Ok(Some(v)),
        Err(RecvTimeoutError::Timeout) => Ok(None),
        Err(RecvTimeoutError::Disconnected) => {
            Err(io::Error::other("every shard hung up before reporting"))
        }
    }
}

/// The orchestrator's control phases against live shards: gather ready
/// addresses, broadcast `peers`/`start`, watch shard status sums until
/// stable, broadcast `stop`, collect shard reports.
fn drive(
    spec: &ClusterSpec,
    n: usize,
    rx: &Receiver<(usize, ShardUp)>,
    pipes: &[UnixStream],
) -> io::Result<(bool, f64, Vec<ShardReport>)> {
    let k = pipes.len();

    // --- gather ready addresses ---
    let setup_deadline = Instant::now() + spec.timeout;
    let mut addrs: Vec<Option<String>> = vec![None; n];
    let mut filled = 0usize;
    while filled < n {
        let Some((s, up)) = recv_or_timeout(rx, setup_deadline)? else {
            return Err(io::Error::other("timed out waiting for ready"));
        };
        match up {
            ShardUp::Ready(list) => {
                for (p, a) in list {
                    if addrs[p].is_none() {
                        filled += 1;
                    }
                    addrs[p] = Some(a);
                }
            }
            ShardUp::Error(e) => return Err(io::Error::other(format!("shard {s}: {e}"))),
            _ => {}
        }
    }
    let peer_line = format!(
        "peers {}\n",
        addrs
            .iter()
            .map(|a| a.as_deref().expect("all ready"))
            .collect::<Vec<_>>()
            .join(" ")
    );
    let wdl = Instant::now() + TUNING.report_grace();
    for p in pipes {
        write_all_deadline(p, peer_line.as_bytes(), wdl)?;
        write_all_deadline(p, b"start\n", wdl)?;
    }

    // --- watch shard status sums until converged or timed out ---
    let started = Instant::now();
    let deadline = started + spec.timeout;
    let mut shard_status: Vec<Option<ShardStatus>> = vec![None; k];
    let mut last_snapshot: Option<Vec<ShardStatus>> = None;
    let mut stable: u32 = 0;
    let mut converged = false;
    let mut wall_s;
    loop {
        wall_s = started.elapsed().as_secs_f64();
        let Some((s, up)) = recv_or_timeout(rx, deadline)? else {
            break; // timeout: not converged
        };
        match up {
            ShardUp::Status(st) => shard_status[s] = Some(st),
            ShardUp::Error(e) => return Err(io::Error::other(format!("shard {s}: {e}"))),
            _ => continue,
        }
        if shard_status.iter().any(Option::is_none) {
            continue;
        }
        let snap: Vec<ShardStatus> = shard_status.iter().map(|s| s.expect("checked")).collect();
        let all_done = snap.iter().all(|s| s.done == s.nodes);
        let held: u64 = snap.iter().map(|s| s.held).sum();
        let generated: u64 = snap.iter().map(|s| s.generated).sum();
        let delivered: u64 = snap.iter().map(|s| s.delivered).sum();
        if all_done && held == 0 && generated == delivered && generated > 0 {
            if last_snapshot.as_deref() == Some(&snap[..]) {
                stable += 1;
                if stable >= TUNING.stable_snapshots {
                    converged = true;
                    wall_s = started.elapsed().as_secs_f64();
                    break;
                }
            } else {
                last_snapshot = Some(snap);
                stable = 1;
            }
        } else {
            last_snapshot = None;
            stable = 0;
        }
    }

    // --- stop everyone, collect the shard reports ---
    let wdl = Instant::now() + TUNING.report_grace();
    for p in pipes {
        let _ = write_all_deadline(p, b"stop\n", wdl);
    }
    let report_deadline = Instant::now() + TUNING.report_grace();
    let mut reports: Vec<Option<ShardReport>> = (0..k).map(|_| None).collect();
    while reports.iter().any(Option::is_none) {
        let Some((s, up)) = recv_or_timeout(rx, report_deadline)? else {
            break;
        };
        match up {
            ShardUp::Done(r) => reports[s] = Some(*r),
            ShardUp::Error(e) => return Err(io::Error::other(format!("shard {s}: {e}"))),
            _ => {}
        }
    }
    let mut out = Vec::with_capacity(k);
    for (s, r) in reports.into_iter().enumerate() {
        out.push(r.ok_or_else(|| io::Error::other(format!("shard {s} sent no report")))?);
    }
    Ok((converged, wall_s, out))
}

/// Runs a cluster to convergence (or timeout) and reconciles the ledgers.
pub fn run_cluster(spec: &ClusterSpec) -> io::Result<RunReport> {
    register_thread(COMPONENT, "orch.main");
    let model = crate::conc::model(&TUNING);
    let n = spec.graph.n();
    let ranges = shard_ranges(n, spec.shards);
    let k = ranges.len();
    // An inproc run holds both ends of every data connection plus the
    // control tree in one process — past the common 1024-fd default well
    // before 100 nodes.
    raise_nofile_limit((4 * spec.graph.edges().len() + 6 * n + 8 * k + 64) as u64);

    let (up_tx, up_rx, _up_stats) =
        tracked_channel::<(usize, ShardUp)>(COMPONENT, model.channel_decl("orch.shard"));
    let mut pipes: Vec<UnixStream> = Vec::with_capacity(k);
    let mut joins: Vec<JoinHandle<()>> = Vec::with_capacity(k);
    for (s, range) in ranges.iter().enumerate() {
        let (orch_side, shard_side) = UnixStream::pair()?;
        orch_side.set_nonblocking(true)?;
        let cfgs: Vec<NodeConfig> = range.clone().map(|p| node_config(spec, p)).collect();
        let mode = spec.mode.clone();
        let tx = up_tx.clone();
        joins.push(spawn_registered(COMPONENT, "shard.super", move || {
            shard_main(s, cfgs, mode, shard_side, tx)
        }));
        pipes.push(orch_side);
    }
    drop(up_tx);

    let outcome = drive(spec, n, &up_rx, &pipes);
    // Dropping the pipes EOFs any shard still in flight (error paths);
    // shards wind their nodes down and exit, so the joins are bounded.
    drop(pipes);
    for j in joins {
        let _ = j.join();
    }
    let (converged, wall_s, shard_reports) = outcome?;

    // --- reconcile + hierarchical aggregation ---
    let mut nodes: Vec<NodeReport> = Vec::with_capacity(n);
    for sr in &shard_reports {
        nodes.extend(sr.reports.iter().cloned());
    }
    nodes.sort_by_key(|r| r.node);
    let ledgers: Vec<NodeLedger> = nodes
        .iter()
        .map(|r| NodeLedger {
            node: r.node,
            generated: r
                .generated
                .iter()
                .map(|&(g, d)| (ghost_to_wire(g), d))
                .collect(),
            delivered: r.delivered.iter().map(|&g| ghost_to_wire(g)).collect(),
            held: r.held.iter().map(|&g| ghost_to_wire(g)).collect(),
        })
        .collect();
    let verdict = reconcile_ledgers(&ledgers);
    // Client mode: the per-client audit is a second single-pass join over
    // the same merged ledgers, with `stamp_decode` bridging the ghost
    // packing into `(client, seq)` stamps (acks decode to None).
    let client_verdict = spec
        .clients
        .as_ref()
        .map(|_| reconcile_clients(&ledgers, crate::clients::stamp_decode));

    let shard_summaries: Vec<ShardSummary> =
        shard_reports.iter().map(|r| r.summary.clone()).collect();
    let mut latency = LogHistogram::new();
    let mut batch = LogHistogram::new();
    let mut counters = NodeCounters::default();
    let mut primaries_delivered = 0u64;
    for s in &shard_summaries {
        latency.merge(&s.latency);
        batch.merge(&s.batch);
        counters.add(&s.counters);
        primaries_delivered += s.primaries_delivered;
    }
    let (client_rtt, client_fair, clients, clients_completed) =
        fold_client_totals(&shard_summaries);
    let throughput = if wall_s > 0.0 {
        primaries_delivered as f64 / wall_s
    } else {
        0.0
    };
    Ok(RunReport {
        topology: spec.topology.clone(),
        n,
        seed: spec.seed,
        shards: k,
        converged,
        wall_s,
        verdict,
        primaries_delivered,
        throughput,
        latency,
        batch,
        counters,
        client_verdict,
        client_rtt,
        client_fair,
        clients,
        clients_completed,
        shard_summaries,
        nodes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssmfp_mp::MpGhost;

    #[test]
    fn node_args_roundtrip() {
        let cfg = NodeConfig {
            node: 2,
            n: 5,
            edges: vec![(0, 1), (1, 2), (2, 3), (3, 4)],
            seed: 99,
            listen: ListenSpec::Uds {
                dir: PathBuf::from("/tmp/x"),
            },
            workload: WorkloadSpec {
                kind: WorkloadKind::Open {
                    rate_per_sec: 250.0,
                },
                messages: 40,
            },
            chaos: ChaosSpec {
                seed: 7,
                faults_per_link: 3,
                partition: Some(PartitionSpec {
                    a: 1,
                    b: 2,
                    from_arrival: 10,
                    len: 25,
                }),
            },
            clients: Some(ClientSpec {
                clients: 100_000,
                load: WorkloadSpec {
                    kind: WorkloadKind::Closed { outstanding: 1 },
                    messages: 2,
                },
                mutation: Some(ClientMutation::DuplicateStamp),
            }),
        };
        let args = node_args(&cfg);
        let back = parse_node_args(&args).unwrap();
        assert_eq!(back.node, cfg.node);
        assert_eq!(back.n, cfg.n);
        assert_eq!(back.edges, cfg.edges);
        assert_eq!(back.seed, cfg.seed);
        assert_eq!(back.listen, cfg.listen);
        assert_eq!(back.workload, cfg.workload);
        assert_eq!(back.chaos, cfg.chaos);
        assert_eq!(back.clients, cfg.clients);
        // Node mode stays the default: no client flags, no client spec.
        let plain = NodeConfig {
            clients: None,
            ..cfg.clone()
        };
        let back = parse_node_args(&node_args(&plain)).unwrap();
        assert_eq!(back.clients, None);
        // The blocking plane is gone: its flag is rejected, not ignored.
        assert!(parse_node_args(&["--io".to_string(), "event".to_string()]).is_err());
        // Client flags are load-bearing together only.
        let mut orphan = node_args(&plain);
        orphan.push("--client-load".into());
        orphan.push("closed:1:2".into());
        assert!(parse_node_args(&orphan).is_err());
    }

    #[test]
    fn shard_ranges_partition_the_nodes() {
        for n in [1usize, 2, 5, 10, 64, 100] {
            for shards in [0usize, 1, 2, 3, 4, 7, 100, 1000] {
                let ranges = shard_ranges(n, shards);
                assert!(!ranges.is_empty());
                assert!(ranges.len() <= shards.max(1).min(n));
                // Contiguous, disjoint, covering.
                let mut next = 0usize;
                for r in &ranges {
                    assert_eq!(r.start, next, "gap at n={n} shards={shards}");
                    assert!(r.end > r.start);
                    next = r.end;
                }
                assert_eq!(next, n, "short cover at n={n} shards={shards}");
            }
        }
    }

    /// The satellite pin: the orchestrator's hierarchical merge (nodes →
    /// shard summaries → run totals) equals the flat per-node sum, for
    /// histograms and every counter, at any sharding.
    #[test]
    fn merged_report_equals_sum_of_shard_reports() {
        let reports: Vec<NodeReport> = (0..10usize)
            .map(|p| {
                let mut lat = LogHistogram::new();
                let mut bat = LogHistogram::new();
                for v in 0..40u64 {
                    lat.record((p as u64 + 1) * 100 + v * 7);
                    bat.record(v % 9 + 1);
                }
                let mut crtt = LogHistogram::new();
                let mut cfair = LogHistogram::new();
                for v in 0..25u64 {
                    crtt.record((p as u64 + 1) * 200 + v * 11);
                    if v % 5 == 0 {
                        cfair.record((p as u64 + 1) * 210);
                    }
                }
                NodeReport {
                    node: p,
                    generated: vec![],
                    delivered: vec![MpGhost::Valid(p as u64), MpGhost::Valid(1000 + p as u64)],
                    held: vec![],
                    latency: lat,
                    batch: bat,
                    client_rtt: crtt,
                    client_fair: cfair,
                    clients: 5 + p as u64,
                    clients_completed: 25,
                    counters: NodeCounters {
                        frames_sent: 10 + p as u64,
                        frames_received: 20 + p as u64,
                        heartbeats_sent: p as u64,
                        reconnects: p as u64 % 2,
                        chaos_dropped: 3 * p as u64,
                        chaos_duplicated: p as u64 / 2,
                        chaos_reordered: p as u64,
                        partition_dropped: p as u64 % 3,
                        write_syscalls: 5 + p as u64,
                        read_syscalls: 6 + p as u64,
                        conn_frames_dropped: p as u64 % 4,
                    },
                }
            })
            .collect();
        let flat = summarize(0, &reports);
        for shards in [1usize, 2, 3, 4, 10] {
            let mut top_lat = LogHistogram::new();
            let mut top_bat = LogHistogram::new();
            let mut top_ctr = NodeCounters::default();
            let mut top_prim = 0u64;
            let summaries: Vec<ShardSummary> = shard_ranges(reports.len(), shards)
                .iter()
                .enumerate()
                .map(|(s, range)| summarize(s, &reports[range.clone()]))
                .collect();
            for sum in &summaries {
                top_lat.merge(&sum.latency);
                top_bat.merge(&sum.batch);
                top_ctr.add(&sum.counters);
                top_prim += sum.primaries_delivered;
            }
            assert_eq!(top_ctr, flat.counters, "counters diverged at {shards}");
            assert_eq!(top_lat, flat.latency, "latency diverged at {shards}");
            assert_eq!(top_bat, flat.batch, "batch diverged at {shards}");
            assert_eq!(top_prim, flat.primaries_delivered);
            // Client totals fold the same way through the same tree.
            let (rtt, fair, clients, completed) = fold_client_totals(&summaries);
            assert_eq!(rtt, flat.client_rtt, "client rtt diverged at {shards}");
            assert_eq!(fair, flat.client_fair, "client fair diverged at {shards}");
            assert_eq!(clients, flat.clients);
            assert_eq!(completed, flat.clients_completed);
        }
    }

    /// The telemetry-complexity pin: what reaches the root per shard is a
    /// *fixed-size* object however many clients the shard hosted, and the
    /// root's client aggregation is exactly K histogram merges — so root
    /// work is O(shards · BUCKET_CAPACITY), never O(total clients).
    #[test]
    fn root_client_work_is_bounded_by_shards_times_buckets() {
        use crate::telemetry::BUCKET_CAPACITY;
        let k = 8usize;
        let clients_per_shard = 1_000_000u64;
        let summaries: Vec<ShardSummary> = (0..k)
            .map(|s| {
                // A shard that hosted a million clients: a million RTT
                // samples and a million fairness samples…
                let mut rtt = LogHistogram::new();
                let mut fair = LogHistogram::new();
                for i in 0..clients_per_shard {
                    rtt.record(100 + (i * 7919) % 1_000_000);
                    fair.record(100 + (i * 104_729) % 1_000_000);
                }
                ShardSummary {
                    shard: s,
                    nodes: 3,
                    client_rtt: rtt,
                    client_fair: fair,
                    clients: clients_per_shard,
                    clients_completed: clients_per_shard,
                    ..ShardSummary::default()
                }
            })
            .collect();
        // …yet its upward representation is bounded by the histogram
        // capacity, independent of the sample count.
        for s in &summaries {
            assert_eq!(s.client_rtt.count(), clients_per_shard);
            assert!(s.client_rtt.nonzero_buckets().len() <= BUCKET_CAPACITY);
            assert!(s.client_fair.nonzero_buckets().len() <= BUCKET_CAPACITY);
        }
        // The root fold sees K such objects; its work is K bucket-wise
        // merges over fixed-capacity arrays. Totals still come out exact.
        let (rtt, fair, clients, completed) = fold_client_totals(&summaries);
        assert_eq!(clients, k as u64 * clients_per_shard);
        assert_eq!(completed, k as u64 * clients_per_shard);
        assert_eq!(rtt.count(), k as u64 * clients_per_shard);
        assert_eq!(fair.count(), k as u64 * clients_per_shard);
        assert!(rtt.nonzero_buckets().len() <= BUCKET_CAPACITY);
    }

    #[test]
    fn workload_and_chaos_parsers_reject_garbage() {
        assert!(parse_workload("open:fast:10").is_err());
        assert!(parse_workload("poisson:1:10").is_err());
        assert!(parse_chaos("1").is_err());
        assert!(parse_chaos("1:2:0-1:5").is_err());
        assert!(parse_workload("closed:4:100").is_ok());
        assert!(parse_chaos("3:2:0-4:10:40").is_ok());
    }

    #[test]
    fn partition_pick_is_deterministic() {
        let g = ssmfp_topology::gen::ring(6);
        let a = pick_partition(&g, 11, 5, 30);
        let b = pick_partition(&g, 11, 5, 30);
        assert_eq!(a, b);
        assert!(g.has_edge(a.a, a.b));
    }
}
