//! Latency histograms and per-node counters.
//!
//! [`LogHistogram`] is the standard log-linear ("HDR") layout: values are
//! bucketed by power of two with 16 linear sub-buckets per power, giving
//! a worst-case relative error of 1/16 ≈ 6% at any magnitude — accurate
//! enough for p50…p999 reporting without storing samples.

/// Linear sub-buckets per power of two (must be a power of two).
const SUB: u64 = 16;
const SUB_BITS: u32 = 4;
/// Bucket count: values below `SUB` get exact buckets, then one group of
/// `SUB` buckets per remaining power of two of the u64 range.
const BUCKETS: usize = (SUB as usize) + ((64 - SUB_BITS as usize) * SUB as usize);

/// A log-linear histogram of microsecond latencies (any u64 unit works;
/// the cluster records µs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: Vec<u64>,
    count: u64,
    max: u64,
    sum: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            max: 0,
            sum: 0,
        }
    }
}

fn bucket_of(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // >= SUB_BITS
    let group = (msb - SUB_BITS) as usize;
    let sub = ((v >> (msb - SUB_BITS)) & (SUB - 1)) as usize;
    SUB as usize + group * SUB as usize + sub
}

/// Representative (midpoint) value of a bucket index.
fn value_of(idx: usize) -> u64 {
    if idx < SUB as usize {
        return idx as u64;
    }
    let group = ((idx - SUB as usize) / SUB as usize) as u32;
    let sub = ((idx - SUB as usize) % SUB as usize) as u64;
    let base = 1u64 << (group + SUB_BITS);
    let width = 1u64 << group;
    base + sub * width + width / 2
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.max = self.max.max(v);
        self.sum = self.sum.saturating_add(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest recorded value (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]` (representative bucket
    /// midpoint; 0 for an empty histogram).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if rank == self.count {
            return self.max; // the tail quantile is known exactly
        }
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return value_of(i).min(self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one (bucket-wise addition).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.max = self.max.max(other.max);
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Sparse `(bucket index, count)` pairs, for serialization.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }

    /// Rebuilds a histogram from [`LogHistogram::nonzero_buckets`] output
    /// plus the exact max/sum carried alongside.
    pub fn from_parts(pairs: &[(usize, u64)], max: u64, sum: u64) -> Self {
        let mut h = Self::new();
        for &(i, c) in pairs {
            if i < BUCKETS {
                h.buckets[i] += c;
                h.count += c;
            }
        }
        h.max = max;
        h.sum = sum;
        h
    }

    /// Exact sum of recorded values (for mean reconstruction).
    pub fn sum(&self) -> u64 {
        self.sum
    }
}

/// Per-node transport and chaos counters, reported at shutdown.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeCounters {
    /// Data-plane frames handed to writer queues.
    pub frames_sent: u64,
    /// Data-plane frames received (pre-chaos).
    pub frames_received: u64,
    /// Heartbeats written on idle links.
    pub heartbeats_sent: u64,
    /// Successful (re)connections dialed, beyond the first per link.
    pub reconnects: u64,
    /// Frames the chaos shim dropped.
    pub chaos_dropped: u64,
    /// Frames the chaos shim duplicated.
    pub chaos_duplicated: u64,
    /// Frames the chaos shim reordered.
    pub chaos_reordered: u64,
    /// Frames dropped by the partition window.
    pub partition_dropped: u64,
    /// Times a bounded send queue was full and the protocol loop had to
    /// spin (backpressure events).
    pub backpressure_stalls: u64,
    /// Inbound frames shed because `node.inbound` was full — wire drops
    /// the protocol's retransmission tolerates (see the declared channel
    /// policy in `crate::conc`).
    pub inbound_shed: u64,
    /// `write()` syscalls on data connections (event plane; zero on the
    /// blocking plane, which does not instrument its writers). Together
    /// with `frames_sent` this makes the coalescing ratio observable:
    /// frames per write ≈ `frames_sent / write_syscalls`.
    pub write_syscalls: u64,
    /// `read()` syscalls that returned data (event plane only).
    pub read_syscalls: u64,
    /// Frames lost with a dying connection or shed at the per-connection
    /// out-buffer cap (event plane) — counted wire drops, distinct from
    /// the chaos shim's deliberate ones.
    pub conn_frames_dropped: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_tight() {
        let mut last = 0;
        for v in [0u64, 1, 15, 16, 17, 100, 1000, 65_535, 1 << 40, u64::MAX] {
            let b = bucket_of(v);
            assert!(b >= last || v == 0, "bucket regressed at {v}");
            last = b;
            // The representative value is within 1/16 of the true value.
            let rep = value_of(b);
            if v >= SUB {
                let err = (rep as f64 - v as f64).abs() / v as f64;
                assert!(err < 1.0 / 8.0, "error {err} at {v} (rep {rep})");
            } else {
                assert_eq!(rep, v);
            }
        }
        assert!(bucket_of(u64::MAX) < BUCKETS);
    }

    #[test]
    fn quantiles_of_uniform_ramp() {
        let mut h = LogHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 10_000);
        let p50 = h.quantile(0.50) as f64;
        let p99 = h.quantile(0.99) as f64;
        assert!((p50 - 5000.0).abs() / 5000.0 < 0.1, "p50 {p50}");
        assert!((p99 - 9900.0).abs() / 9900.0 < 0.1, "p99 {p99}");
        assert_eq!(h.quantile(1.0), 10_000);
        assert_eq!(h.max(), 10_000);
    }

    #[test]
    fn merge_equals_union() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut u = LogHistogram::new();
        for v in 0..500u64 {
            let target = if v % 2 == 0 { &mut a } else { &mut b };
            target.record(v * 7);
            u.record(v * 7);
        }
        a.merge(&b);
        assert_eq!(a.count(), u.count());
        for q in [0.5, 0.95, 0.99, 0.999] {
            assert_eq!(a.quantile(q), u.quantile(q));
        }
        assert_eq!(a.max(), u.max());
    }

    #[test]
    fn roundtrip_through_parts() {
        let mut h = LogHistogram::new();
        for v in [3u64, 900, 12_345, 1 << 30] {
            h.record(v);
        }
        let back = LogHistogram::from_parts(&h.nonzero_buckets(), h.max(), h.sum());
        assert_eq!(back.count(), h.count());
        assert_eq!(back.quantile(0.5), h.quantile(0.5));
        assert_eq!(back.max(), h.max());
    }
}
