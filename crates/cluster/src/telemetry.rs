//! Latency histograms and per-node counters.
//!
//! [`LogHistogram`] is the standard log-linear ("HDR") layout: values are
//! bucketed by power of two with 16 linear sub-buckets per power, giving
//! a worst-case relative error of 1/16 ≈ 6% at any magnitude — accurate
//! enough for p50…p999 reporting without storing samples.

/// Linear sub-buckets per power of two (must be a power of two).
const SUB: u64 = 16;
const SUB_BITS: u32 = 4;
/// Bucket count: values below `SUB` get exact buckets, then one group of
/// `SUB` buckets per remaining power of two of the u64 range.
const BUCKETS: usize = (SUB as usize) + ((64 - SUB_BITS as usize) * SUB as usize);

/// The fixed bucket capacity of every [`LogHistogram`] — and therefore
/// the hard size bound of any serialized/merged histogram, however many
/// samples went in. Root-side merge work is O(this), never O(samples):
/// the telemetry-complexity regression tests pin against it.
pub const BUCKET_CAPACITY: usize = BUCKETS;

/// A log-linear histogram of microsecond latencies (any u64 unit works;
/// the cluster records µs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: Vec<u64>,
    count: u64,
    max: u64,
    sum: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            max: 0,
            sum: 0,
        }
    }
}

fn bucket_of(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // >= SUB_BITS
    let group = (msb - SUB_BITS) as usize;
    let sub = ((v >> (msb - SUB_BITS)) & (SUB - 1)) as usize;
    SUB as usize + group * SUB as usize + sub
}

/// Representative (midpoint) value of a bucket index.
fn value_of(idx: usize) -> u64 {
    if idx < SUB as usize {
        return idx as u64;
    }
    let group = ((idx - SUB as usize) / SUB as usize) as u32;
    let sub = ((idx - SUB as usize) % SUB as usize) as u64;
    let base = 1u64 << (group + SUB_BITS);
    let width = 1u64 << group;
    base + sub * width + width / 2
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.max = self.max.max(v);
        self.sum = self.sum.saturating_add(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest recorded value (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]` (representative bucket
    /// midpoint; 0 for an empty histogram).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if rank == self.count {
            return self.max; // the tail quantile is known exactly
        }
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return value_of(i).min(self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one (bucket-wise addition).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.max = self.max.max(other.max);
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Sparse `(bucket index, count)` pairs, for serialization.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }

    /// Rebuilds a histogram from [`LogHistogram::nonzero_buckets`] output
    /// plus the exact max/sum carried alongside.
    pub fn from_parts(pairs: &[(usize, u64)], max: u64, sum: u64) -> Self {
        let mut h = Self::new();
        for &(i, c) in pairs {
            if i < BUCKETS {
                h.buckets[i] += c;
                h.count += c;
            }
        }
        h.max = max;
        h.sum = sum;
        h
    }

    /// Exact sum of recorded values (for mean reconstruction).
    pub fn sum(&self) -> u64 {
        self.sum
    }
}

/// Per-node transport and chaos counters, reported at shutdown.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeCounters {
    /// Data-plane frames handed to writer queues.
    pub frames_sent: u64,
    /// Data-plane frames received (pre-chaos).
    pub frames_received: u64,
    /// Heartbeats written on idle links.
    pub heartbeats_sent: u64,
    /// Successful (re)connections dialed, beyond the first per link.
    pub reconnects: u64,
    /// Frames the chaos shim dropped.
    pub chaos_dropped: u64,
    /// Frames the chaos shim duplicated.
    pub chaos_duplicated: u64,
    /// Frames the chaos shim reordered.
    pub chaos_reordered: u64,
    /// Frames dropped by the partition window.
    pub partition_dropped: u64,
    /// `write()` syscalls on data connections. Together with
    /// `frames_sent` this makes the coalescing ratio observable:
    /// frames per write ≈ `frames_sent / write_syscalls`.
    pub write_syscalls: u64,
    /// `read()` syscalls that returned data.
    pub read_syscalls: u64,
    /// Frames lost with a dying connection or shed at the per-connection
    /// out-buffer cap — counted wire drops, distinct from the chaos
    /// shim's deliberate ones.
    pub conn_frames_dropped: u64,
}

impl NodeCounters {
    /// Field-wise accumulation, the single merge path for both levels of
    /// the shard tree: shard summaries sum their nodes' counters with it,
    /// and the orchestrator sums shard summaries with it. One definition
    /// means the merged report *is* the flat sum (pinned by a test).
    pub fn add(&mut self, other: &NodeCounters) {
        self.frames_sent += other.frames_sent;
        self.frames_received += other.frames_received;
        self.heartbeats_sent += other.heartbeats_sent;
        self.reconnects += other.reconnects;
        self.chaos_dropped += other.chaos_dropped;
        self.chaos_duplicated += other.chaos_duplicated;
        self.chaos_reordered += other.chaos_reordered;
        self.partition_dropped += other.partition_dropped;
        self.write_syscalls += other.write_syscalls;
        self.read_syscalls += other.read_syscalls;
        self.conn_frames_dropped += other.conn_frames_dropped;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_tight() {
        let mut last = 0;
        for v in [0u64, 1, 15, 16, 17, 100, 1000, 65_535, 1 << 40, u64::MAX] {
            let b = bucket_of(v);
            assert!(b >= last || v == 0, "bucket regressed at {v}");
            last = b;
            // The representative value is within 1/16 of the true value.
            let rep = value_of(b);
            if v >= SUB {
                let err = (rep as f64 - v as f64).abs() / v as f64;
                assert!(err < 1.0 / 8.0, "error {err} at {v} (rep {rep})");
            } else {
                assert_eq!(rep, v);
            }
        }
        assert!(bucket_of(u64::MAX) < BUCKETS);
    }

    #[test]
    fn quantiles_of_uniform_ramp() {
        let mut h = LogHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 10_000);
        let p50 = h.quantile(0.50) as f64;
        let p99 = h.quantile(0.99) as f64;
        assert!((p50 - 5000.0).abs() / 5000.0 < 0.1, "p50 {p50}");
        assert!((p99 - 9900.0).abs() / 9900.0 < 0.1, "p99 {p99}");
        assert_eq!(h.quantile(1.0), 10_000);
        assert_eq!(h.max(), 10_000);
    }

    #[test]
    fn merge_equals_union() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut u = LogHistogram::new();
        for v in 0..500u64 {
            let target = if v % 2 == 0 { &mut a } else { &mut b };
            target.record(v * 7);
            u.record(v * 7);
        }
        a.merge(&b);
        assert_eq!(a.count(), u.count());
        for q in [0.5, 0.95, 0.99, 0.999] {
            assert_eq!(a.quantile(q), u.quantile(q));
        }
        assert_eq!(a.max(), u.max());
    }

    /// Hierarchical aggregation must be invisible: summing per-node
    /// counters shard-by-shard and then summing the shard totals gives
    /// exactly the flat sum over all nodes, for any sharding. Same for
    /// histograms (merge of merges == merge of all).
    #[test]
    fn sharded_merge_equals_flat_sum() {
        // 10 synthetic node counter sets with distinct values per field.
        let nodes: Vec<NodeCounters> = (0..10u64)
            .map(|i| NodeCounters {
                frames_sent: 100 + i,
                frames_received: 200 + 2 * i,
                heartbeats_sent: i,
                reconnects: i % 3,
                chaos_dropped: 7 * i,
                chaos_duplicated: i / 2,
                chaos_reordered: 3 * i,
                partition_dropped: i % 5,
                write_syscalls: 50 + i,
                read_syscalls: 60 + i,
                conn_frames_dropped: i % 2,
            })
            .collect();

        let mut flat = NodeCounters::default();
        for n in &nodes {
            flat.add(n);
        }

        for shards in [1usize, 2, 3, 4, 10] {
            let chunk = nodes.len().div_ceil(shards);
            let mut top = NodeCounters::default();
            for group in nodes.chunks(chunk) {
                let mut shard_sum = NodeCounters::default();
                for n in group {
                    shard_sum.add(n);
                }
                top.add(&shard_sum);
            }
            assert_eq!(top, flat, "sharded sum diverged at shards={shards}");
        }

        // Histograms: merging per-shard merges equals merging everything.
        let mut per_node: Vec<LogHistogram> = Vec::new();
        for i in 0..10u64 {
            let mut h = LogHistogram::new();
            for v in 0..50u64 {
                h.record(i * 1000 + v * 13);
            }
            per_node.push(h);
        }
        let mut flat_h = LogHistogram::new();
        for h in &per_node {
            flat_h.merge(h);
        }
        let mut top_h = LogHistogram::new();
        for group in per_node.chunks(3) {
            let mut shard_h = LogHistogram::new();
            for h in group {
                shard_h.merge(h);
            }
            top_h.merge(&shard_h);
        }
        assert_eq!(top_h, flat_h);
    }

    #[test]
    fn roundtrip_through_parts() {
        let mut h = LogHistogram::new();
        for v in [3u64, 900, 12_345, 1 << 30] {
            h.record(v);
        }
        let back = LogHistogram::from_parts(&h.nonzero_buckets(), h.max(), h.sum());
        assert_eq!(back.count(), h.count());
        assert_eq!(back.quantile(0.5), h.quantile(0.5));
        assert_eq!(back.max(), h.max());
    }
}
