//! A socket-backed [`Transport`]: every directed edge is a real
//! `UnixStream` pair carrying length-prefixed frames from `core::wire`.
//!
//! This is the bridge that lets the simulator's adversarial scheduler
//! drive the protocol over actual OS sockets — the shared exactly-once
//! suite in `ssmfp_mp::suite` runs unchanged against it, so the channel
//! transport and the socket path are conformance-tested by the *same*
//! properties (and any framing bug shows up as a protocol-level failure).

use crate::evloop::{PollSet, WriteBuf, POLLERR, POLLHUP, POLLIN, POLLOUT};
use crate::frame::{frame_to_msg, msg_to_frame};
use ssmfp_core::wire::{encode_frame, FrameReader};
use ssmfp_mp::{ChannelFaults, FaultClerk, LinkId, Transport, WireMsg};
use ssmfp_topology::Graph;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::os::unix::prelude::AsRawFd;

struct Lane {
    link: LinkId,
    tx: UnixStream,
    rx: UnixStream,
    reader: FrameReader,
    queue: VecDeque<WireMsg>,
    /// Frames written minus frames decoded (still in the socket).
    in_socket: usize,
}

impl Lane {
    /// Drains readable bytes and decodes complete frames into the queue.
    fn pump(&mut self) {
        let mut buf = [0u8; 4096];
        loop {
            match self.rx.read(&mut buf) {
                Ok(0) => return,
                Ok(k) => self.reader.extend(&buf[..k]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) => panic!("loopback read on {:?}: {e}", self.link),
            }
        }
        loop {
            match self.reader.next_frame() {
                Ok(Some(frame)) => {
                    self.in_socket -= 1;
                    if let Some(msg) = frame_to_msg(&frame) {
                        self.queue.push_back(msg);
                    }
                }
                Ok(None) => return,
                Err(e) => panic!("loopback decode on {:?}: {e}", self.link),
            }
        }
    }
}

/// One `UnixStream` pair per directed edge; frames cross a real kernel
/// socket between `send` and `recv`.
pub struct LoopbackTransport {
    lanes: Vec<Lane>,
    clerk: Option<FaultClerk>,
    scratch: Vec<u8>,
}

impl LoopbackTransport {
    /// Builds the socket mesh for `graph`. Panics if the OS refuses a
    /// socket pair (tests want the loud failure).
    pub fn new(graph: &Graph) -> Self {
        let mut lanes = Vec::new();
        for &(p, q) in graph.edges() {
            for link in [LinkId { from: p, to: q }, LinkId { from: q, to: p }] {
                let (tx, rx) = UnixStream::pair().expect("socketpair");
                rx.set_nonblocking(true).expect("nonblocking rx");
                lanes.push(Lane {
                    link,
                    tx,
                    rx,
                    reader: FrameReader::new(),
                    queue: VecDeque::new(),
                    in_socket: 0,
                });
            }
        }
        LoopbackTransport {
            lanes,
            clerk: None,
            scratch: Vec::with_capacity(64),
        }
    }

    fn index(&self, link: LinkId) -> usize {
        self.lanes
            .iter()
            .position(|l| l.link == link)
            .expect("messages may only be sent to neighbours")
    }
}

impl Transport<WireMsg> for LoopbackTransport {
    fn send(&mut self, link: LinkId, msg: WireMsg) {
        let idx = self.index(link);
        let lane = &mut self.lanes[idx];
        self.scratch.clear();
        encode_frame(&msg_to_frame(&msg), &mut self.scratch);
        lane.tx.write_all(&self.scratch).expect("loopback write");
        lane.in_socket += 1;
    }

    fn busy_links(&mut self, out: &mut Vec<LinkId>) {
        for lane in &mut self.lanes {
            lane.pump();
            if !lane.queue.is_empty() {
                out.push(lane.link);
            }
        }
    }

    fn recv(&mut self, link: LinkId) -> Option<WireMsg> {
        let idx = self.index(link);
        self.lanes[idx].pump();
        let lane = &mut self.lanes[idx];
        match &mut self.clerk {
            Some(clerk) => clerk.pull(&mut lane.queue),
            None => Some(lane.queue.pop_front().expect("busy link")),
        }
    }

    fn in_flight(&self) -> usize {
        self.lanes.iter().map(|l| l.in_socket + l.queue.len()).sum()
    }

    fn set_faults(&mut self, faults: ChannelFaults) {
        self.clerk = Some(FaultClerk::new(faults));
    }

    fn faults_exhausted(&self) -> bool {
        self.clerk.as_ref().is_none_or(FaultClerk::exhausted)
    }

    fn fault_counts(&self) -> (u64, u64, u64) {
        self.clerk.as_ref().map_or((0, 0, 0), FaultClerk::counts)
    }
}

struct PolledLane {
    link: LinkId,
    tx: UnixStream,
    rx: UnixStream,
    /// Coalescing outbound buffer: `send` only appends; bytes reach the
    /// socket in batched writes from [`PolledTransport::drive`].
    out: WriteBuf,
    reader: FrameReader,
    queue: VecDeque<WireMsg>,
    /// Frames handed to `send` minus frames decoded on the far side.
    sent: u64,
    decoded: u64,
}

impl PolledLane {
    /// Decodes whatever the incremental reader has accumulated.
    fn drain_frames(&mut self) {
        loop {
            match self.reader.next_frame() {
                Ok(Some(frame)) => {
                    self.decoded += 1;
                    if let Some(msg) = frame_to_msg(&frame) {
                        self.queue.push_back(msg);
                    }
                }
                Ok(None) => return,
                Err(e) => panic!("polled decode on {:?}: {e}", self.link),
            }
        }
    }
}

/// The event loop's building blocks ([`WriteBuf`] coalescing, [`PollSet`]
/// readiness, incremental [`FrameReader`]) behind the plain [`Transport`]
/// trait, so the shared exactly-once suite conformance-tests the batched
/// wire hot path itself — not just the blocking per-edge variant.
///
/// `send` never touches the socket: frames accumulate in the per-edge
/// [`WriteBuf`] and cross the kernel in coalesced writes when
/// [`Transport::drive`] observes `POLLOUT` readiness. That makes the
/// adversarial scheduler exercise arbitrary interleavings of "buffered
/// but unflushed" and "in socket but undecoded" states.
pub struct PolledTransport {
    lanes: Vec<PolledLane>,
    clerk: Option<FaultClerk>,
    poll: PollSet,
    scratch: Vec<u8>,
    write_syscalls: u64,
    read_syscalls: u64,
    frames_flushed: u64,
}

impl PolledTransport {
    /// Builds one nonblocking socket pair per directed edge.
    pub fn new(graph: &Graph) -> Self {
        let mut lanes = Vec::new();
        for &(p, q) in graph.edges() {
            for link in [LinkId { from: p, to: q }, LinkId { from: q, to: p }] {
                let (tx, rx) = UnixStream::pair().expect("socketpair");
                tx.set_nonblocking(true).expect("nonblocking tx");
                rx.set_nonblocking(true).expect("nonblocking rx");
                lanes.push(PolledLane {
                    link,
                    tx,
                    rx,
                    out: WriteBuf::with_capacity(4096),
                    reader: FrameReader::new(),
                    queue: VecDeque::new(),
                    sent: 0,
                    decoded: 0,
                });
            }
        }
        PolledTransport {
            lanes,
            clerk: None,
            poll: PollSet::new(),
            scratch: vec![0u8; 4096],
            write_syscalls: 0,
            read_syscalls: 0,
            frames_flushed: 0,
        }
    }

    fn index(&self, link: LinkId) -> usize {
        self.lanes
            .iter()
            .position(|l| l.link == link)
            .expect("messages may only be sent to neighbours")
    }

    /// `(frames flushed, write syscalls, read syscalls)` — the
    /// observability hook the coalescing test asserts against.
    pub fn io_counts(&self) -> (u64, u64, u64) {
        (self.frames_flushed, self.write_syscalls, self.read_syscalls)
    }

    /// One readiness pass: registers every receiving end for `POLLIN`
    /// and every lane with pending output for `POLLOUT`, polls with a
    /// zero timeout, then flushes/pumps exactly the ready lanes.
    fn poll_pass(&mut self) {
        self.poll.clear();
        let mut rx_slots = Vec::with_capacity(self.lanes.len());
        let mut tx_slots = Vec::new();
        for (i, lane) in self.lanes.iter().enumerate() {
            rx_slots.push(self.poll.push(lane.rx.as_raw_fd(), POLLIN));
            if !lane.out.is_empty() {
                tx_slots.push((self.poll.push(lane.tx.as_raw_fd(), POLLOUT), i));
            }
        }
        match self.poll.poll(Some(std::time::Duration::ZERO)) {
            Ok(0) => return,
            Ok(_) => {}
            Err(e) => panic!("polled transport poll: {e}"),
        }
        for (slot, i) in tx_slots {
            if self.poll.revents(slot) & (POLLOUT | POLLERR | POLLHUP) != 0 {
                let lane = &mut self.lanes[i];
                loop {
                    match lane.tx.write(lane.out.pending_bytes()) {
                        Ok(k) => {
                            self.write_syscalls += 1;
                            if let Some(batch) = lane.out.consume(k) {
                                self.frames_flushed += batch as u64;
                                break;
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) => panic!("polled write on {:?}: {e}", lane.link),
                    }
                }
            }
        }
        for (i, slot) in rx_slots.into_iter().enumerate() {
            if self.poll.revents(slot) & (POLLIN | POLLERR | POLLHUP) != 0 {
                let lane = &mut self.lanes[i];
                loop {
                    match lane.rx.read(&mut self.scratch) {
                        Ok(0) => break,
                        Ok(k) => {
                            self.read_syscalls += 1;
                            lane.reader.extend(&self.scratch[..k]);
                            if k < self.scratch.len() {
                                break;
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) => panic!("polled read on {:?}: {e}", lane.link),
                    }
                }
                lane.drain_frames();
            }
        }
    }
}

impl Transport<WireMsg> for PolledTransport {
    fn send(&mut self, link: LinkId, msg: WireMsg) {
        let idx = self.index(link);
        let frame = msg_to_frame(&msg);
        let lane = &mut self.lanes[idx];
        lane.out.push_frame(&frame);
        lane.sent += 1;
    }

    fn drive(&mut self) {
        self.poll_pass();
    }

    fn busy_links(&mut self, out: &mut Vec<LinkId>) {
        // Pump here too so the suite stays correct even for callers that
        // never invoke `drive` between steps.
        self.poll_pass();
        for lane in &self.lanes {
            if !lane.queue.is_empty() {
                out.push(lane.link);
            }
        }
    }

    fn recv(&mut self, link: LinkId) -> Option<WireMsg> {
        let idx = self.index(link);
        if self.lanes[idx].queue.is_empty() {
            self.poll_pass();
        }
        let lane = &mut self.lanes[idx];
        match &mut self.clerk {
            Some(clerk) => clerk.pull(&mut lane.queue),
            None => Some(lane.queue.pop_front().expect("busy link")),
        }
    }

    fn in_flight(&self) -> usize {
        self.lanes
            .iter()
            .map(|l| (l.sent - l.decoded) as usize + l.queue.len())
            .sum()
    }

    fn set_faults(&mut self, faults: ChannelFaults) {
        self.clerk = Some(FaultClerk::new(faults));
    }

    fn faults_exhausted(&self) -> bool {
        self.clerk.as_ref().is_none_or(FaultClerk::exhausted)
    }

    fn fault_counts(&self) -> (u64, u64, u64) {
        self.clerk.as_ref().map_or((0, 0, 0), FaultClerk::counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssmfp_mp::suite;
    use ssmfp_topology::gen;

    /// The same conformance suite `crates/mp` runs over its in-process
    /// channels, here over real kernel sockets.
    #[test]
    fn loopback_transport_exactly_once_clean() {
        let outcome = suite::exactly_once_clean(LoopbackTransport::new, 0..3);
        assert!(outcome.clean());
        assert!(outcome.sent > 0);
    }

    #[test]
    fn loopback_transport_exactly_once_under_faults() {
        let outcome = suite::exactly_once_under_faults(LoopbackTransport::new, 0..6);
        assert!(outcome.clean());
        assert!(outcome.sent > 0);
    }

    #[test]
    fn frames_physically_cross_the_socket() {
        let g = gen::line(2);
        let mut t = LoopbackTransport::new(&g);
        let link = LinkId { from: 0, to: 1 };
        t.send(link, WireMsg::Dv { d: 1, dist: 3 });
        assert_eq!(t.in_flight(), 1);
        let mut busy = Vec::new();
        t.busy_links(&mut busy);
        assert_eq!(busy, vec![link]);
        assert_eq!(t.recv(link), Some(WireMsg::Dv { d: 1, dist: 3 }));
        assert_eq!(t.in_flight(), 0);
    }

    /// The batched readiness path passes the identical conformance
    /// properties as the blocking one — coalescing is invisible to the
    /// protocol.
    #[test]
    fn polled_transport_exactly_once_clean() {
        let outcome = suite::exactly_once_clean(PolledTransport::new, 0..3);
        assert!(outcome.clean());
        assert!(outcome.sent > 0);
    }

    #[test]
    fn polled_transport_exactly_once_under_faults() {
        let outcome = suite::exactly_once_under_faults(PolledTransport::new, 0..6);
        assert!(outcome.clean());
        assert!(outcome.sent > 0);
    }

    /// Many sends followed by one `drive` must cross the socket in far
    /// fewer writes than frames — the coalescing contract itself.
    #[test]
    fn polled_transport_coalesces_frames_into_batched_writes() {
        let g = gen::line(2);
        let mut t = PolledTransport::new(&g);
        let link = LinkId { from: 0, to: 1 };
        for i in 0..64 {
            t.send(link, WireMsg::Dv { d: 1, dist: i });
        }
        assert_eq!(t.in_flight(), 64);
        t.drive();
        let (frames, writes, _) = t.io_counts();
        assert_eq!(frames, 64);
        assert!(
            writes * 8 <= frames,
            "expected >=8 frames/write, got {frames} frames in {writes} writes"
        );
        let mut busy = Vec::new();
        t.busy_links(&mut busy);
        assert_eq!(busy, vec![link]);
        for i in 0..64 {
            assert_eq!(t.recv(link), Some(WireMsg::Dv { d: 1, dist: i }));
        }
        assert_eq!(t.in_flight(), 0);
    }

    /// Unflushed frames count as in flight: the convergence detector must
    /// not declare quiescence while bytes sit in a coalescing buffer.
    #[test]
    fn polled_transport_counts_buffered_frames_in_flight() {
        let g = gen::line(2);
        let mut t = PolledTransport::new(&g);
        let link = LinkId { from: 0, to: 1 };
        t.send(link, WireMsg::Dv { d: 1, dist: 9 });
        // Not driven yet: the frame lives only in the WriteBuf.
        let (frames, _, _) = t.io_counts();
        assert_eq!(frames, 0);
        assert_eq!(t.in_flight(), 1);
    }
}
