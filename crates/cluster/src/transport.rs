//! A socket-backed [`Transport`]: every directed edge is a real
//! `UnixStream` pair carrying length-prefixed frames from `core::wire`.
//!
//! This is the bridge that lets the simulator's adversarial scheduler
//! drive the protocol over actual OS sockets — the shared exactly-once
//! suite in `ssmfp_mp::suite` runs unchanged against it, so the channel
//! transport and the socket path are conformance-tested by the *same*
//! properties (and any framing bug shows up as a protocol-level failure).

use crate::frame::{frame_to_msg, msg_to_frame};
use ssmfp_core::wire::{encode_frame, FrameReader};
use ssmfp_mp::{ChannelFaults, FaultClerk, LinkId, Transport, WireMsg};
use ssmfp_topology::Graph;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::os::unix::net::UnixStream;

struct Lane {
    link: LinkId,
    tx: UnixStream,
    rx: UnixStream,
    reader: FrameReader,
    queue: VecDeque<WireMsg>,
    /// Frames written minus frames decoded (still in the socket).
    in_socket: usize,
}

impl Lane {
    /// Drains readable bytes and decodes complete frames into the queue.
    fn pump(&mut self) {
        let mut buf = [0u8; 4096];
        loop {
            match self.rx.read(&mut buf) {
                Ok(0) => return,
                Ok(k) => self.reader.extend(&buf[..k]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) => panic!("loopback read on {:?}: {e}", self.link),
            }
        }
        loop {
            match self.reader.next_frame() {
                Ok(Some(frame)) => {
                    self.in_socket -= 1;
                    if let Some(msg) = frame_to_msg(&frame) {
                        self.queue.push_back(msg);
                    }
                }
                Ok(None) => return,
                Err(e) => panic!("loopback decode on {:?}: {e}", self.link),
            }
        }
    }
}

/// One `UnixStream` pair per directed edge; frames cross a real kernel
/// socket between `send` and `recv`.
pub struct LoopbackTransport {
    lanes: Vec<Lane>,
    clerk: Option<FaultClerk>,
    scratch: Vec<u8>,
}

impl LoopbackTransport {
    /// Builds the socket mesh for `graph`. Panics if the OS refuses a
    /// socket pair (tests want the loud failure).
    pub fn new(graph: &Graph) -> Self {
        let mut lanes = Vec::new();
        for &(p, q) in graph.edges() {
            for link in [LinkId { from: p, to: q }, LinkId { from: q, to: p }] {
                let (tx, rx) = UnixStream::pair().expect("socketpair");
                rx.set_nonblocking(true).expect("nonblocking rx");
                lanes.push(Lane {
                    link,
                    tx,
                    rx,
                    reader: FrameReader::new(),
                    queue: VecDeque::new(),
                    in_socket: 0,
                });
            }
        }
        LoopbackTransport {
            lanes,
            clerk: None,
            scratch: Vec::with_capacity(64),
        }
    }

    fn index(&self, link: LinkId) -> usize {
        self.lanes
            .iter()
            .position(|l| l.link == link)
            .expect("messages may only be sent to neighbours")
    }
}

impl Transport<WireMsg> for LoopbackTransport {
    fn send(&mut self, link: LinkId, msg: WireMsg) {
        let idx = self.index(link);
        let lane = &mut self.lanes[idx];
        self.scratch.clear();
        encode_frame(&msg_to_frame(&msg), &mut self.scratch);
        lane.tx.write_all(&self.scratch).expect("loopback write");
        lane.in_socket += 1;
    }

    fn busy_links(&mut self, out: &mut Vec<LinkId>) {
        for lane in &mut self.lanes {
            lane.pump();
            if !lane.queue.is_empty() {
                out.push(lane.link);
            }
        }
    }

    fn recv(&mut self, link: LinkId) -> Option<WireMsg> {
        let idx = self.index(link);
        self.lanes[idx].pump();
        let lane = &mut self.lanes[idx];
        match &mut self.clerk {
            Some(clerk) => clerk.pull(&mut lane.queue),
            None => Some(lane.queue.pop_front().expect("busy link")),
        }
    }

    fn in_flight(&self) -> usize {
        self.lanes.iter().map(|l| l.in_socket + l.queue.len()).sum()
    }

    fn set_faults(&mut self, faults: ChannelFaults) {
        self.clerk = Some(FaultClerk::new(faults));
    }

    fn faults_exhausted(&self) -> bool {
        self.clerk.as_ref().is_none_or(FaultClerk::exhausted)
    }

    fn fault_counts(&self) -> (u64, u64, u64) {
        self.clerk.as_ref().map_or((0, 0, 0), FaultClerk::counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssmfp_mp::suite;
    use ssmfp_topology::gen;

    /// The same conformance suite `crates/mp` runs over its in-process
    /// channels, here over real kernel sockets.
    #[test]
    fn loopback_transport_exactly_once_clean() {
        let outcome = suite::exactly_once_clean(LoopbackTransport::new, 0..3);
        assert!(outcome.clean());
        assert!(outcome.sent > 0);
    }

    #[test]
    fn loopback_transport_exactly_once_under_faults() {
        let outcome = suite::exactly_once_under_faults(LoopbackTransport::new, 0..6);
        assert!(outcome.clean());
        assert!(outcome.sent > 0);
    }

    #[test]
    fn frames_physically_cross_the_socket() {
        let g = gen::line(2);
        let mut t = LoopbackTransport::new(&g);
        let link = LinkId { from: 0, to: 1 };
        t.send(link, WireMsg::Dv { d: 1, dist: 3 });
        assert_eq!(t.in_flight(), 1);
        let mut busy = Vec::new();
        t.busy_links(&mut busy);
        assert_eq!(busy, vec![link]);
        assert_eq!(t.recv(link), Some(WireMsg::Dv { d: 1, dist: 3 }));
        assert_eq!(t.in_flight(), 0);
    }
}
