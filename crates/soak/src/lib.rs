//! The fault-injection **soak harness**: long randomized campaigns of
//! [`FaultScenario`]s across topologies × daemons × fault plans, audited
//! end-to-end by the `SP` oracle, with delta-debugging of failures.
//!
//! A campaign is a seeded sweep: seed `k` deterministically derives a
//! scenario (topology, daemon, initial corruption, higher-layer sends,
//! and a mid-execution [`FaultPlan`](ssmfp_core::FaultPlan)), runs it to
//! quiescence, and asks the oracle whether Specification `SP` held for
//! the post-fault epoch. Any failing scenario is **shrunk** — faults are
//! dropped greedily to a fixpoint, then each survivor is narrowed to a
//! strictly weaker kind — and serialized as a replay artifact that
//! re-executes the failure deterministically via
//! [`run_fault_scenario`].
//!
//! On the real protocol a campaign must come back clean; the
//! [`SeededBug`] mutations exist to prove the oracle *would* notice
//! (see [`mutation_self_test`]).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use ssmfp_core::faults::{FaultPlan, FaultPlanConfig, SeededBug};
use ssmfp_core::replay::{run_fault_scenario, FaultScenario, ScenarioOutcome, SendSpec};
use ssmfp_core::DaemonKind;
use ssmfp_routing::CorruptionKind;
use ssmfp_topology::{gen, Graph};

/// Shape of one campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Number of scenarios (seeds `0..scenarios`).
    pub scenarios: u64,
    /// Faults per plan.
    pub faults_per_plan: usize,
    /// Step budget per scenario.
    pub budget: u64,
    /// Planted protocol bug (`None` = the real protocol).
    pub bug: Option<SeededBug>,
    /// Worker threads.
    pub threads: usize,
}

impl CampaignConfig {
    /// The CI smoke configuration: bounded, fixed seeds, still covering
    /// every topology × daemon pair in the pools.
    pub fn quick() -> Self {
        CampaignConfig {
            scenarios: 30,
            faults_per_plan: 4,
            budget: 300_000,
            bug: None,
            threads: default_threads(),
        }
    }

    /// A full campaign over `scenarios` seeds.
    pub fn full(scenarios: u64) -> Self {
        CampaignConfig {
            scenarios,
            ..CampaignConfig::quick()
        }
    }

    /// Replaces the planted bug.
    pub fn with_bug(mut self, bug: SeededBug) -> Self {
        self.bug = Some(bug);
        self
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The topology pool (index = `seed % 5`).
fn topology(seed: u64) -> Graph {
    match seed % 5 {
        0 => gen::line(4),
        1 => gen::ring(5),
        2 => gen::star(5),
        3 => gen::grid(2, 3),
        _ => gen::random_connected(7, 9, seed),
    }
}

/// The daemon pool (index = `(seed / 5) % 6`), so 30 consecutive seeds
/// cover every topology × daemon pair.
fn daemon(seed: u64, n: usize) -> DaemonKind {
    match (seed / 5) % 6 {
        0 => DaemonKind::RoundRobin,
        1 => DaemonKind::Synchronous,
        2 => DaemonKind::CentralRandom { seed },
        3 => DaemonKind::DistributedRandom { seed, p_move: 0.5 },
        4 => DaemonKind::LocallyCentral { seed },
        _ => DaemonKind::Adversarial {
            seed,
            victims: vec![(seed as usize) % n],
        },
    }
}

/// Deterministically derives scenario `seed` of a campaign: pooled
/// topology and daemon, rotating initial corruption, sends both before
/// and after the fault window, and a random domain-legal fault plan.
pub fn scenario_from_seed(seed: u64, config: &CampaignConfig) -> FaultScenario {
    let graph = topology(seed);
    let n = graph.n();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x50AC_50AC_50AC_50AC);
    let corruption = [
        CorruptionKind::RandomGarbage,
        CorruptionKind::None,
        CorruptionKind::ParentCycles,
    ][(seed % 3) as usize];
    let garbage_fill = [0.0, 0.3, 0.6][((seed / 3) % 3) as usize];
    // The fault window: stamps in `0..200`; two sends precede it, two
    // land inside it, and two are issued strictly after the last
    // possible fault — the messages the exactly-once guarantee fully
    // binds for.
    let horizon = 200;
    let mut sends = Vec::new();
    for &at_step in &[0, 40, 90, 150] {
        let src = rng.gen_range(0..n);
        let mut dst = rng.gen_range(0..n);
        if dst == src {
            dst = (dst + 1) % n;
        }
        // Payloads from a deliberately small alphabet: same-payload
        // collisions (with each other and with initial garbage) are the
        // merge hazards the colors exist to disambiguate, so the campaign
        // provokes them on purpose.
        sends.push(SendSpec {
            at_step,
            src,
            dst,
            payload: rng.gen_range(0..4),
        });
    }
    // Post-fault: a back-to-back pair with identical (src, dst, payload) —
    // the paper's "same useful information" hazard (Figure 3). Only the
    // colors keep the second message from being certified against the
    // first's still-resident copy; both carry the exactly-once guarantee
    // since they are generated after the last fault.
    let src = rng.gen_range(0..n);
    let mut dst = rng.gen_range(0..n);
    if dst == src {
        dst = (dst + 1) % n;
    }
    let payload = rng.gen_range(0..4);
    for &at_step in &[horizon + 50, horizon + 51] {
        sends.push(SendSpec {
            at_step,
            src,
            dst,
            payload,
        });
    }
    let plan = FaultPlan::random(
        &graph,
        FaultPlanConfig {
            faults: config.faults_per_plan,
            horizon,
            seed,
        },
    );
    FaultScenario {
        n,
        edges: graph.edges().to_vec(),
        daemon: daemon(seed, n),
        corruption,
        garbage_fill,
        seed,
        bug: config.bug,
        budget: config.budget,
        sends,
        plan,
    }
}

/// A flagged scenario with its shrunk minimal reproduction.
#[derive(Debug, Clone)]
pub struct Failure {
    /// The campaign seed.
    pub seed: u64,
    /// The original scenario.
    pub scenario: FaultScenario,
    /// The oracle's verdict on the original.
    pub outcome: ScenarioOutcome,
    /// The scenario with the shrunk plan (same in every other respect).
    pub shrunk: FaultScenario,
    /// The oracle's verdict on the shrunk reproduction (still failing).
    pub shrunk_outcome: ScenarioOutcome,
}

/// Aggregate result of one campaign.
#[derive(Debug, Clone)]
pub struct CampaignSummary {
    /// Scenarios executed.
    pub scenarios: u64,
    /// Faults applied across all scenarios.
    pub faults_applied: usize,
    /// Scenarios that exhausted their budget without quiescing (excluded
    /// from the liveness checks, counted here for visibility).
    pub non_converged: u64,
    /// Mean post-fault convergence steps over converged scenarios.
    pub mean_post_fault_steps: f64,
    /// Flagged scenarios, shrunk.
    pub failures: Vec<Failure>,
}

impl CampaignSummary {
    /// Whether the campaign came back clean.
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Shrinks a failing scenario's plan to a minimal reproduction: greedy
/// drop to a fixpoint, then per-fault narrowing
/// ([`FaultKind::narrow_candidates`](ssmfp_core::FaultKind::narrow_candidates)).
/// The result never has more faults than the input, and still fails.
///
/// Soundness rests on per-fault seeds: removing or narrowing one fault
/// cannot change what any *other* fault writes, so each candidate plan's
/// re-execution is a faithful counterfactual.
pub fn shrink_plan(scenario: &FaultScenario) -> (FaultPlan, ScenarioOutcome) {
    let mut best = scenario.plan.clone();
    let mut best_outcome = run_fault_scenario(scenario);
    debug_assert!(best_outcome.is_violation(), "shrinking a passing scenario");
    loop {
        let mut progressed = false;
        // Pass 1: greedy drop, restarting from the front after each hit.
        let mut i = 0;
        while i < best.len() {
            let cand = best.without(i);
            let outcome = run_fault_scenario(&scenario.with_plan(cand.clone()));
            if outcome.is_violation() {
                best = cand;
                best_outcome = outcome;
                progressed = true;
            } else {
                i += 1;
            }
        }
        // Pass 2: narrow each surviving fault to a strictly weaker kind.
        for i in 0..best.len() {
            for kind in best.faults[i].kind.narrow_candidates() {
                let cand = best.with_kind(i, kind);
                let outcome = run_fault_scenario(&scenario.with_plan(cand.clone()));
                if outcome.is_violation() {
                    best = cand;
                    best_outcome = outcome;
                    progressed = true;
                    break;
                }
            }
        }
        if !progressed {
            return (best, best_outcome);
        }
    }
}

/// Runs a campaign: every seed's scenario is executed (in parallel) and
/// audited; failures are shrunk sequentially afterwards.
pub fn run_campaign(config: &CampaignConfig) -> CampaignSummary {
    let seeds: Vec<u64> = (0..config.scenarios).collect();
    let results: Vec<(FaultScenario, ScenarioOutcome)> =
        ssmfp_analysis::parallel::run_ordered(&seeds, config.threads, |_, &seed| {
            let scenario = scenario_from_seed(seed, config);
            let outcome = run_fault_scenario(&scenario);
            (scenario, outcome)
        });
    let mut summary = CampaignSummary {
        scenarios: config.scenarios,
        faults_applied: 0,
        non_converged: 0,
        mean_post_fault_steps: 0.0,
        failures: Vec::new(),
    };
    let mut converged = 0u64;
    let mut post_fault_steps = 0u64;
    for (scenario, outcome) in results {
        summary.faults_applied += outcome.faults_applied;
        if outcome.quiescent {
            converged += 1;
            post_fault_steps += outcome.post_fault_steps;
        } else {
            summary.non_converged += 1;
        }
        if outcome.is_violation() {
            let (shrunk_plan, shrunk_outcome) = shrink_plan(&scenario);
            summary.failures.push(Failure {
                seed: scenario.seed,
                shrunk: scenario.with_plan(shrunk_plan),
                scenario,
                outcome,
                shrunk_outcome,
            });
        }
    }
    if converged > 0 {
        summary.mean_post_fault_steps = post_fault_steps as f64 / converged as f64;
    }
    summary
}

/// Runs the oracle self-test: plants `bug` in an otherwise identical
/// campaign and returns the summary, which **must** contain failures —
/// an oracle that stays green over a known-broken protocol is vacuous.
pub fn mutation_self_test(bug: SeededBug, config: &CampaignConfig) -> CampaignSummary {
    let mutated = config.clone().with_bug(bug);
    run_campaign(&mutated)
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Hand-rolled JSON rendering of a campaign summary (the artifact the CI
/// soak-smoke job uploads). No serde in the dependency tree; same
/// approach as `ssmfp-lint`'s report JSON.
pub fn summary_json(summary: &CampaignSummary) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"scenarios\": {},\n", summary.scenarios));
    out.push_str(&format!(
        "  \"faults_applied\": {},\n",
        summary.faults_applied
    ));
    out.push_str(&format!(
        "  \"non_converged\": {},\n",
        summary.non_converged
    ));
    out.push_str(&format!(
        "  \"mean_post_fault_steps\": {:.2},\n",
        summary.mean_post_fault_steps
    ));
    out.push_str(&format!("  \"violations\": {},\n", summary.failures.len()));
    out.push_str("  \"failures\": [");
    for (i, f) in summary.failures.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"seed\": {}, \"summary\": \"{}\", \"plan_faults\": {}, \"shrunk_faults\": {}}}",
            f.seed,
            json_escape(&f.outcome.summary()),
            f.scenario.plan.len(),
            f.shrunk.plan.len()
        ));
    }
    if !summary.failures.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssmfp_core::replay::run_fault_scenario;

    fn test_config() -> CampaignConfig {
        CampaignConfig {
            scenarios: 30,
            faults_per_plan: 3,
            budget: 200_000,
            bug: None,
            threads: default_threads(),
        }
    }

    #[test]
    fn real_protocol_campaign_is_clean() {
        let summary = run_campaign(&test_config());
        assert!(
            summary.clean(),
            "oracle flagged the real protocol: {:?}",
            summary
                .failures
                .iter()
                .map(|f| (f.seed, f.outcome.summary()))
                .collect::<Vec<_>>()
        );
        assert_eq!(summary.non_converged, 0, "every scenario must quiesce");
        assert!(summary.faults_applied > 0, "plans must actually fire");
    }

    #[test]
    fn scenario_derivation_is_deterministic_and_diverse() {
        let config = test_config();
        let a = scenario_from_seed(7, &config);
        let b = scenario_from_seed(7, &config);
        assert_eq!(a, b);
        // 30 seeds cover all 6 daemons and all 5 topologies.
        let mut daemons = std::collections::HashSet::new();
        let mut sizes = std::collections::HashSet::new();
        for seed in 0..30 {
            let s = scenario_from_seed(seed, &config);
            daemons.insert(std::mem::discriminant(&s.daemon));
            sizes.insert((s.n, s.edges.len()));
        }
        assert_eq!(daemons.len(), 6);
        assert!(sizes.len() >= 5);
    }

    /// Satellite: the mutation self-test. The oracle must flag the
    /// seeded `SkipR4Erase` bug, the shrunk plan must be no larger than
    /// the injected one, and the dumped replay artifact must re-execute
    /// the failure deterministically.
    #[test]
    fn oracle_flags_skip_r4_erase_and_shrinks() {
        let mut config = test_config();
        config.scenarios = 12;
        let summary = mutation_self_test(SeededBug::SkipR4Erase, &config);
        assert!(
            !summary.failures.is_empty(),
            "a vacuous oracle: the R4-erase bug went unnoticed"
        );
        for f in &summary.failures {
            assert!(
                f.shrunk.plan.len() <= f.scenario.plan.len(),
                "shrinking grew the plan"
            );
            assert!(
                f.shrunk_outcome.is_violation(),
                "shrunk plan must still fail"
            );
            // Replay artifact roundtrip: parse back and re-execute.
            let text = f.shrunk.to_text();
            let replayed = FaultScenario::from_text(&text).expect("artifact parses");
            let outcome = run_fault_scenario(&replayed);
            assert_eq!(
                outcome, f.shrunk_outcome,
                "replay artifact must reproduce the failure bit-for-bit"
            );
        }
        // The R4 bug breaks the protocol with no faults needed at all, so
        // greedy dropping should reach the empty plan on at least one
        // failure — the strongest possible shrink.
        assert!(
            summary.failures.iter().any(|f| f.shrunk.plan.is_empty()),
            "expected at least one failure to shrink to the empty plan"
        );
    }

    #[test]
    fn oracle_flags_color_reuse() {
        let mut config = test_config();
        // The color-reuse bug needs payload collisions through shared
        // links (the campaign's duplicate-pair sends provoke them); the
        // first pooled scenario that lines the schedule up is seed 33.
        config.scenarios = 50;
        let summary = mutation_self_test(SeededBug::ColorReuse, &config);
        assert!(
            !summary.failures.is_empty(),
            "a vacuous oracle: the color-reuse bug went unnoticed"
        );
        for f in &summary.failures {
            assert!(f.shrunk.plan.len() <= f.scenario.plan.len());
        }
    }

    #[test]
    fn summary_json_is_well_formed() {
        let mut config = test_config();
        config.scenarios = 4;
        let summary = run_campaign(&config);
        let json = summary_json(&summary);
        assert!(json.contains("\"scenarios\": 4"));
        assert!(json.contains("\"violations\": 0"));
        assert!(json.ends_with("}\n"));
    }

    /// Satellite: `AdversarialDaemon` and `LocallyCentralDaemon` under
    /// injected faults (they are only exercised fault-free elsewhere).
    #[test]
    fn adversarial_and_locally_central_daemons_survive_faults() {
        let config = test_config();
        for seed in 0..30u64 {
            let scenario = scenario_from_seed(seed, &config);
            let interesting = matches!(
                scenario.daemon,
                DaemonKind::Adversarial { .. } | DaemonKind::LocallyCentral { .. }
            );
            if !interesting {
                continue;
            }
            let outcome = run_fault_scenario(&scenario);
            assert_eq!(outcome.faults_applied, scenario.plan.len());
            assert!(
                !outcome.is_violation(),
                "seed {seed} ({:?}): {}",
                scenario.daemon,
                outcome.summary()
            );
            assert!(outcome.quiescent, "seed {seed}: {}", outcome.summary());
        }
    }
}
