//! `ssmfp-soak` — randomized fault-injection soak campaigns with a spec
//! oracle, failure shrinking, and deterministic replay artifacts.
//!
//! Usage:
//!
//! * `ssmfp-soak [--quick] [--seeds N] [--faults N] [--budget N]
//!   [--threads N] [--out FILE] [--artifact-dir DIR]` — run a campaign on
//!   the real protocol. Exits 0 iff no spec violation was found; a JSON
//!   summary is written to `--out` (default `SOAK_summary.json`), and any
//!   failure's shrunk reproduction is dumped as a replay artifact under
//!   `--artifact-dir` (default `.`).
//! * `ssmfp-soak --mutation-check` — the red-expected oracle self-test:
//!   plants the seeded protocol bugs and exits 0 iff the oracle flags
//!   both, with a shrunk plan no larger than the injected one and a
//!   replay artifact that reproduces the failure.
//! * `ssmfp-soak --replay FILE` — re-execute a dumped artifact; prints
//!   the oracle verdict and exits 0 iff the run satisfies `SP` (so a
//!   true failure artifact exits 1, deterministically).

use ssmfp_core::faults::SeededBug;
use ssmfp_core::replay::{run_fault_scenario, FaultScenario};
use ssmfp_soak::{mutation_self_test, run_campaign, summary_json, CampaignConfig};

struct Options {
    config: CampaignConfig,
    out: String,
    artifact_dir: String,
    replay: Option<String>,
    mutation_check: bool,
}

fn parse_args() -> Options {
    let mut opts = Options {
        config: CampaignConfig::quick(),
        out: "SOAK_summary.json".to_string(),
        artifact_dir: ".".to_string(),
        replay: None,
        mutation_check: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{what} needs a value")))
        };
        match arg.as_str() {
            "--quick" => opts.config = CampaignConfig::quick(),
            "--seeds" => {
                opts.config.scenarios = parse(&value("--seeds"), "--seeds");
            }
            "--faults" => {
                opts.config.faults_per_plan = parse(&value("--faults"), "--faults") as usize;
            }
            "--budget" => {
                opts.config.budget = parse(&value("--budget"), "--budget");
            }
            "--threads" => {
                opts.config.threads = parse(&value("--threads"), "--threads").max(1) as usize;
            }
            "--out" => opts.out = value("--out"),
            "--artifact-dir" => opts.artifact_dir = value("--artifact-dir"),
            "--replay" => opts.replay = Some(value("--replay")),
            "--mutation-check" => opts.mutation_check = true,
            "--version" => {
                println!("ssmfp-soak {}", env!("CARGO_PKG_VERSION"));
                std::process::exit(0);
            }
            "--help" | "-h" => {
                println!(
                    "usage: ssmfp-soak [--quick] [--seeds N] [--faults N] [--budget N] \
                     [--threads N] [--out FILE] [--artifact-dir DIR] \
                     [--mutation-check] [--replay FILE]"
                );
                std::process::exit(0);
            }
            other => die(&format!("unknown argument: {other}")),
        }
    }
    opts
}

fn parse(v: &str, flag: &str) -> u64 {
    v.parse()
        .unwrap_or_else(|_| die(&format!("bad {flag} value: {v}")))
}

fn die(msg: &str) -> ! {
    eprintln!("ssmfp-soak: {msg}");
    std::process::exit(2);
}

fn replay(path: &str) -> i32 {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| die(&format!("cannot read artifact '{path}': {e}")));
    let scenario = FaultScenario::from_text(&text)
        .unwrap_or_else(|e| die(&format!("bad artifact '{path}': {e}")));
    let outcome = run_fault_scenario(&scenario);
    println!("replay of {path}:");
    println!(
        "  plan: {} faults, epoch {:?}",
        scenario.plan.len(),
        outcome.epoch_step
    );
    println!("  {}", outcome.summary());
    if outcome.is_violation() {
        for v in &outcome.violations {
            println!("  violation: {v:?}");
        }
        for g in &outcome.undelivered {
            println!("  undelivered at quiescence: {g:?}");
        }
        for g in &outcome.generation_blocked {
            println!("  generation blocked: {g:?}");
        }
        1
    } else {
        println!("  SP holds for the post-fault epoch");
        0
    }
}

fn mutation_check(config: &CampaignConfig, artifact_dir: &str) -> i32 {
    let mut config = config.clone();
    // 50 pooled scenarios: the first seed flagging SkipR4Erase is 3, the
    // first flagging ColorReuse is 33.
    config.scenarios = config.scenarios.max(50);
    let mut ok = true;
    for bug in [SeededBug::SkipR4Erase, SeededBug::ColorReuse] {
        let summary = mutation_self_test(bug, &config);
        if summary.failures.is_empty() {
            eprintln!(
                "VACUOUS ORACLE: seeded bug {} produced no flagged scenario",
                bug.label()
            );
            ok = false;
            continue;
        }
        let f = &summary.failures[0];
        let grew = f.shrunk.plan.len() > f.scenario.plan.len();
        let reproduced = {
            let round = FaultScenario::from_text(&f.shrunk.to_text())
                .map(|s| run_fault_scenario(&s))
                .ok();
            round.as_ref() == Some(&f.shrunk_outcome)
        };
        println!(
            "bug {:<14} flagged={} shrunk {} -> {} faults, replay reproduces={}",
            bug.label(),
            summary.failures.len(),
            f.scenario.plan.len(),
            f.shrunk.plan.len(),
            reproduced
        );
        if grew || !reproduced || !f.shrunk_outcome.is_violation() {
            ok = false;
        }
        // Dump the shrunk reproduction so `--replay` (and CI) can
        // re-execute the failure from the artifact alone.
        let path = format!("{artifact_dir}/soak-mutation-{}.txt", bug.label());
        if let Err(e) = std::fs::write(&path, f.shrunk.to_text()) {
            eprintln!("cannot write artifact '{path}': {e}");
            ok = false;
        } else {
            println!("  artifact: {path}");
        }
    }
    if ok {
        println!("mutation self-test passed: the oracle catches both seeded bugs");
        0
    } else {
        1
    }
}

fn main() {
    let opts = parse_args();
    if let Some(path) = &opts.replay {
        std::process::exit(replay(path));
    }
    if opts.mutation_check {
        std::process::exit(mutation_check(&opts.config, &opts.artifact_dir));
    }
    let summary = run_campaign(&opts.config);
    println!(
        "soak campaign: {} scenarios, {} faults applied, {} non-converged, \
         mean post-fault convergence {:.1} steps",
        summary.scenarios,
        summary.faults_applied,
        summary.non_converged,
        summary.mean_post_fault_steps
    );
    let json = summary_json(&summary);
    if let Err(e) = std::fs::write(&opts.out, &json) {
        die(&format!("cannot write summary '{}': {e}", opts.out));
    }
    println!("summary written to {}", opts.out);
    if summary.clean() {
        println!("no spec violation: SP held on every post-fault epoch");
        std::process::exit(0);
    }
    eprintln!("{} SPEC VIOLATION(S):", summary.failures.len());
    for f in &summary.failures {
        let path = format!("{}/soak-failure-seed{}.txt", opts.artifact_dir, f.seed);
        eprintln!(
            "  seed {}: {} (plan {} -> shrunk {} faults) -> {}",
            f.seed,
            f.outcome.summary(),
            f.scenario.plan.len(),
            f.shrunk.plan.len(),
            path
        );
        if let Err(e) = std::fs::write(&path, f.shrunk.to_text()) {
            eprintln!("  (cannot write artifact: {e})");
        }
    }
    std::process::exit(1);
}
