//! Static analyses over the declared rule footprints.
//!
//! The forwarding rules and the routing algorithm declare read/write
//! footprints (`ssmfp_core::footprint`, `ssmfp_routing::footprint`); this
//! crate checks structural properties of those declarations that the
//! paper's correctness argument relies on:
//!
//! * **`non-local-write`** — every write is to the acting processor's own
//!   variables (the locally-shared-memory model; §2.1).
//! * **`ownership`** — SSMFP never writes a variable `A` owns and vice
//!   versa (the priority composition's contract; §3.1).
//! * **`write-write-race`** — no two rules at *neighbouring* processors
//!   can write a common variable instance under any daemon selection
//!   (composite atomicity only merges writes to *different* processors'
//!   variables; a cross-processor write/write race would make step
//!   outcomes selection-order dependent).
//! * **`guard-overlap`** — which rule pairs can be simultaneously enabled
//!   at one processor for one destination, computed from the guard
//!   shapes and compared against the hand-verified allow-list (a guard
//!   edit that creates a new simultaneous-enabledness pair fails the
//!   lint until the analysis — and the paper argument — is revisited).
//! * **`cross-dest-interference`** — rules of *different* destination
//!   instances at neighbouring processors are independent, except for
//!   the documented coupling through `A`'s priority guard. This
//!   per-destination isolation is what the paper's per-instance
//!   reasoning (and the checker's partial-order reduction) stands on.
//! * **`codec-impure` / `codec-coverage`** — the packed state codec
//!   ([`ssmfp_core::codec_footprint`]) must stay a pure observer (no
//!   declared writes: packing a configuration may never change it) and
//!   its reads must cover every variable class some rule can write —
//!   otherwise the checker's packed storage silently drops state and two
//!   distinct configurations collapse into one visited entry.
//! * **`wire-coverage`** — the cluster runtime's wire surface
//!   ([`ssmfp_core::wire`]) must stay a bijection: every protocol event
//!   kind that crosses a link has exactly one frame tag, and every frame
//!   tag maps back to exactly one declared kind. A link-crossing event
//!   with no frame cannot leave the process; two tags for one kind (or
//!   one tag claiming an undeclared kind) would let the socket and
//!   in-process transports disagree about what a byte stream means.
//! * **`fault-domain`** — every fault kind the injection engine can plant
//!   ([`ssmfp_core::faults::FaultKind`]) confines its writes to variable
//!   classes some declared rule already writes. Snap-stabilization is
//!   "correct from any *model* configuration": a fault writing a class
//!   outside every footprint would corrupt ghost/ledger instrumentation
//!   or state the protocol never repairs, and the soak oracle's
//!   post-fault argument would be vacuous.
//!
//! * **`conc-*`** (module [`conc`]) — the runtime crates declare their
//!   concurrency footprint ([`ssmfp_core::conc::ConcModel`]: thread
//!   roles, lock ranks, channel bounds/policies, blocking edges) the
//!   same way the rules declare state footprints. `conc-deadlock`
//!   detects lock-rank inversions and feasible circular waits,
//!   `conc-unbounded` requires a bound and a full-queue policy on every
//!   cross-thread channel, `conc-hold-across-block` forbids holding a
//!   lock across blocking I/O, and `conc-coverage` keeps the
//!   declarations referentially closed (its runtime half — observed
//!   threads ⊆ declared roles — runs in the debug-build suites).
//!
//! Findings are emitted as a machine-readable JSON report by the
//! `ssmfp-lint` binary, which exits nonzero on violations (and, under
//! `-D`, on warnings). `ssmfp-lint --list` prints the pass catalog;
//! `--only`/`--skip` filter findings by pass name.

pub mod conc;

use ssmfp_core::conc::ConcModel;
use ssmfp_core::footprint::{composed_fwd_footprint, guards_can_overlap, LAYER_SSMFP};
use ssmfp_core::wire::{
    FrameTag, CLIENT_STAMP_FIELDS, ENCODED_CLIENT_STAMP_FIELDS, LINK_EVENT_KINDS,
};
use ssmfp_core::{codec_footprint, FaultKind, Rule};
use ssmfp_kernel::footprint::{independent, Access, Footprint, Locus, VarClass};
use ssmfp_routing::footprint::{routing_footprint, LAYER_A};

/// A rule (or routing action) under analysis: its label, owning layer,
/// and footprints instantiated at two representative destinations.
///
/// Two instances suffice: for *adjacent* processors the materialized
/// conflict relation depends only on the variable classes and on whether
/// the destination scopes overlap, so one same-destination probe and one
/// different-destination probe cover all instantiations.
#[derive(Debug, Clone)]
pub struct RuleDecl {
    /// Display label (`"R1"` … `"R6"`, `"A"`).
    pub label: &'static str,
    /// The layer the rule belongs to (`"SSMFP"` or `"A"`).
    pub layer: &'static str,
    /// Footprint of the instance for destination 0.
    pub fp_d0: Footprint,
    /// Footprint of the instance for destination 1.
    pub fp_d1: Footprint,
    /// The forwarding rule behind this declaration, if any (drives the
    /// guard-overlap analysis; `None` for `A`).
    pub rule: Option<Rule>,
}

/// The shipped declarations: R1–R6 under the composed protocol (with
/// `A`'s priority) plus `A`'s correction rule.
pub fn default_decls() -> Vec<RuleDecl> {
    let mut decls: Vec<RuleDecl> = Rule::EVAL_ORDER
        .iter()
        .map(|&rule| RuleDecl {
            label: rule_label(rule),
            layer: LAYER_SSMFP,
            fp_d0: composed_fwd_footprint(rule, 0, true),
            fp_d1: composed_fwd_footprint(rule, 1, true),
            rule: Some(rule),
        })
        .collect();
    decls.sort_by_key(|d| d.label);
    decls.push(RuleDecl {
        label: "A",
        layer: LAYER_A,
        fp_d0: routing_footprint(0),
        fp_d1: routing_footprint(1),
        rule: None,
    });
    decls
}

fn rule_label(rule: Rule) -> &'static str {
    match rule {
        Rule::R1 => "R1",
        Rule::R2 => "R2",
        Rule::R3 => "R3",
        Rule::R4 => "R4",
        Rule::R5 => "R5",
        Rule::R6 => "R6",
    }
}

/// The hand-verified simultaneous-enabledness pairs (same processor, same
/// destination). Derived in `DESIGN.md` ("Static rule analysis & POR");
/// `EVAL_ORDER` resolves them at runtime.
pub const ALLOWED_OVERLAPS: [(&str, &str); 6] = [
    ("R1", "R4"),
    ("R1", "R6"),
    ("R3", "R4"),
    ("R3", "R6"),
    ("R4", "R5"),
    ("R5", "R6"),
];

/// Severity of a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Breaks a model/paper invariant: the binary always fails on these.
    Violation,
    /// Hygiene problem in the declarations; fails only under `-D`.
    Warning,
}

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Severity class.
    pub severity: Severity,
    /// Stable machine-readable code (e.g. `"non-local-write"`).
    pub code: &'static str,
    /// Human-readable description.
    pub message: String,
}

/// The full analysis result.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// All findings, violations first.
    pub findings: Vec<Finding>,
    /// Computed guard-overlap pairs (same processor, same destination).
    pub guard_overlaps: Vec<(String, String)>,
    /// Dependent same-destination pairs at neighbouring processors (the
    /// forwarding handshake edges the partial-order reduction must keep).
    pub same_dest_interference: Vec<(String, String)>,
    /// Independent different-destination pairs at neighbouring processors
    /// when `A`'s priority coupling is set aside (should be *all* pairs).
    pub cross_dest_independent: Vec<(String, String)>,
    /// Variable classes the packed state codec declares it reads.
    pub codec_reads: Vec<String>,
    /// Variable classes the fault-injection engine can write (union over
    /// all fault kinds' declared write-sets).
    pub fault_write_classes: Vec<String>,
    /// The wire surface as audited: `(frame tag, event kind)` pairs.
    pub wire_tags: Vec<(String, String)>,
    /// Per-component summaries of the analyzed concurrency models.
    pub conc: Vec<conc::ConcComponentSummary>,
}

impl LintReport {
    /// Findings with [`Severity::Violation`].
    pub fn violations(&self) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Violation)
    }

    /// Findings with [`Severity::Warning`].
    pub fn warnings(&self) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Warning)
    }

    /// Exit status for the binary: nonzero iff violations exist, or (with
    /// `deny_warnings`) any finding at all.
    pub fn exit_code(&self, deny_warnings: bool) -> i32 {
        let fail =
            self.violations().next().is_some() || (deny_warnings && !self.findings.is_empty());
        i32::from(fail)
    }
}

pub(crate) fn push(
    report: &mut LintReport,
    severity: Severity,
    code: &'static str,
    message: String,
) {
    report.findings.push(Finding {
        severity,
        code,
        message,
    });
}

/// The pass catalog: every finding code the analyzer can emit, with a
/// one-line description. This is what `ssmfp-lint --list` prints and what
/// `--only`/`--skip` names are validated against.
pub const PASSES: &[(&str, &str)] = &[
    (
        "non-local-write",
        "every declared write targets the acting processor's own variables",
    ),
    (
        "ownership",
        "no layer writes a variable the other layer owns (priority composition contract)",
    ),
    (
        "duplicate-access",
        "footprint hygiene: no access is declared twice (warning)",
    ),
    (
        "guard-overlap",
        "simultaneous-enabledness pairs match the hand-verified allow-list",
    ),
    (
        "stale-overlap-allowance",
        "the overlap allow-list contains no pairs the guard shapes rule out (warning)",
    ),
    (
        "write-write-race",
        "no two rules at neighbouring processors write a common variable instance",
    ),
    (
        "cross-dest-interference",
        "different-destination instances are independent without A's priority coupling",
    ),
    (
        "codec-impure",
        "the packed state codec declares no writes (packing is a pure observation)",
    ),
    (
        "codec-coverage",
        "the codec reads every variable class some rule can write",
    ),
    (
        "fault-domain",
        "every injectable fault writes only classes some declared rule writes",
    ),
    (
        "wire-coverage",
        "frame tags ↔ link-crossing event kinds is a bijection",
    ),
    (
        "conc-deadlock",
        "no lock-rank inversions and no feasible circular wait in the declared blocking graph",
    ),
    (
        "conc-unbounded",
        "every cross-thread channel declares a bound and a full-queue policy",
    ),
    (
        "conc-hold-across-block",
        "no lock is held across a declared socket/queue blocking edge",
    ),
    (
        "conc-coverage",
        "concurrency declarations are referentially closed (runtime half: observed ⊆ declared)",
    ),
];

/// True iff `name` is a known pass name.
pub fn known_pass(name: &str) -> bool {
    PASSES.iter().any(|&(p, _)| p == name)
}

impl LintReport {
    /// Restricts the findings to the selected passes: with a non-empty
    /// `only`, keep only those codes; then drop every code in `skip`.
    /// Summary sections (overlap matrices, conc summaries, …) are kept —
    /// the filter gates pass *verdicts*, not the audit data.
    pub fn retain_passes(&mut self, only: &[String], skip: &[String]) {
        self.findings.retain(|f| {
            (only.is_empty() || only.iter().any(|p| p == f.code))
                && !skip.iter().any(|p| p == f.code)
        });
    }
}

/// The shipped concurrency models: the cluster data plane and the
/// (single-threaded) message-passing simulator.
pub fn default_conc_models() -> Vec<ConcModel> {
    vec![ssmfp_mp::conc_model(), ssmfp_cluster::conc::default_model()]
}

/// Runs every analysis over `decls` and `models`.
pub fn analyze_with_conc(decls: &[RuleDecl], models: &[ConcModel]) -> LintReport {
    let mut report = LintReport::default();
    lint_non_local_writes(decls, &mut report);
    lint_ownership(decls, &mut report);
    lint_duplicate_accesses(decls, &mut report);
    lint_guard_overlap(decls, &mut report);
    lint_races(decls, &mut report);
    lint_codec(decls, &codec_footprint(), &mut report);
    lint_fault_domains(decls, &mut report);
    lint_wire_coverage(&default_wire_surface(), &mut report);
    for model in models {
        conc::lint_conc_model(model, &mut report);
    }
    report
        .findings
        .sort_by_key(|f| (f.severity == Severity::Warning) as u8);
    report
}

/// Runs every analysis over `decls`, with the shipped concurrency models.
pub fn analyze(decls: &[RuleDecl]) -> LintReport {
    analyze_with_conc(decls, &default_conc_models())
}

/// Convenience: analyze the shipped declarations.
pub fn analyze_default() -> LintReport {
    analyze(&default_decls())
}

fn lint_non_local_writes(decls: &[RuleDecl], report: &mut LintReport) {
    for decl in decls {
        for w in decl.fp_d0.writes.iter().chain(&decl.fp_d1.writes) {
            if w.locus == Locus::Neighbors {
                push(
                    report,
                    Severity::Violation,
                    "non-local-write",
                    format!(
                        "{} declares a write to a neighbour's `{}` — the locally-shared-memory \
                         model only allows writing the acting processor's own variables",
                        decl.label, w.var.name
                    ),
                );
            }
        }
    }
}

fn lint_ownership(decls: &[RuleDecl], report: &mut LintReport) {
    for decl in decls {
        for w in decl.fp_d0.writes.iter().chain(&decl.fp_d1.writes) {
            if w.var.owner != decl.layer {
                push(
                    report,
                    Severity::Violation,
                    "ownership",
                    format!(
                        "{} (layer {}) declares a write to `{}`, owned by layer {} — the \
                         priority composition forbids one layer writing the other's variables",
                        decl.label, decl.layer, w.var.name, w.var.owner
                    ),
                );
            }
        }
    }
}

fn lint_duplicate_accesses(decls: &[RuleDecl], report: &mut LintReport) {
    let dup = |accesses: &[Access]| -> Option<Access> {
        accesses
            .iter()
            .enumerate()
            .find(|(i, a)| accesses[..*i].contains(a))
            .map(|(_, a)| *a)
    };
    for decl in decls {
        for (kind, accesses) in [("read", &decl.fp_d0.reads), ("write", &decl.fp_d0.writes)] {
            if let Some(a) = dup(accesses) {
                push(
                    report,
                    Severity::Warning,
                    "duplicate-access",
                    format!(
                        "{} declares the {kind} access to `{}` twice",
                        decl.label, a.var.name
                    ),
                );
            }
        }
    }
}

fn lint_guard_overlap(decls: &[RuleDecl], report: &mut LintReport) {
    let rules: Vec<Rule> = decls.iter().filter_map(|d| d.rule).collect();
    let mut computed: Vec<(&'static str, &'static str)> = Vec::new();
    for (i, &a) in rules.iter().enumerate() {
        for &b in rules.iter().skip(i + 1) {
            if guards_can_overlap(a, b) {
                let (la, lb) = (rule_label(a), rule_label(b));
                let pair = if la <= lb { (la, lb) } else { (lb, la) };
                computed.push(pair);
            }
        }
    }
    computed.sort();
    computed.dedup();
    for &(a, b) in &computed {
        report.guard_overlaps.push((a.to_string(), b.to_string()));
        if !ALLOWED_OVERLAPS.contains(&(a, b)) && !ALLOWED_OVERLAPS.contains(&(b, a)) {
            push(
                report,
                Severity::Violation,
                "guard-overlap",
                format!(
                    "rules {a} and {b} can be simultaneously enabled at one processor for the \
                     same destination, which the documented overlap analysis does not allow — \
                     revisit the EVAL_ORDER priority argument before shipping this guard change"
                ),
            );
        }
    }
    for &(a, b) in &ALLOWED_OVERLAPS {
        let present = computed.contains(&(a, b)) || computed.contains(&(b, a));
        if !present
            && rules.iter().any(|&r| rule_label(r) == a)
            && rules.iter().any(|&r| rule_label(r) == b)
        {
            push(
                report,
                Severity::Warning,
                "stale-overlap-allowance",
                format!(
                    "the allow-list expects rules {a} and {b} to overlap, but the guard shapes \
                     rule it out — the allow-list is stale"
                ),
            );
        }
    }
}

/// Race analyses over neighbouring processors. Representative topology:
/// processors 0 and 1, mutually adjacent — for adjacent pairs the
/// materialized conflict relation depends only on classes and scopes.
fn lint_races(decls: &[RuleDecl], report: &mut LintReport) {
    let (p, p_nbrs, q, q_nbrs) = (0usize, [1usize], 1usize, [0usize]);
    for a in decls {
        for b in decls {
            // Write/write races, same or different destination.
            for (fa, fb) in [(&a.fp_d0, &b.fp_d0), (&a.fp_d0, &b.fp_d1)] {
                let ww = fa.writes.iter().any(|w| {
                    fb.writes.iter().any(|v| {
                        w.var == v.var && w.dest.overlaps(v.dest)
                            // Both loci are Me in a clean model; materialize:
                            && ((w.locus == Locus::Me && v.locus == Locus::Me && p == q)
                                || w.locus == Locus::Neighbors
                                || v.locus == Locus::Neighbors)
                    })
                });
                if ww {
                    push(
                        report,
                        Severity::Violation,
                        "write-write-race",
                        format!(
                            "{} at a processor and {} at a neighbour can write a common `{}` \
                             instance — step outcomes would depend on daemon selection order",
                            a.label,
                            b.label,
                            fa.writes.first().map(|w| w.var.name).unwrap_or("?")
                        ),
                    );
                }
            }
        }
    }
    // Interference matrices (ordered pairs deduplicated to unordered).
    for (i, a) in decls.iter().enumerate() {
        for b in decls.iter().skip(i) {
            if !independent(&a.fp_d0, p, &p_nbrs, &b.fp_d0, q, &q_nbrs) {
                report
                    .same_dest_interference
                    .push((a.label.to_string(), b.label.to_string()));
            }
            // Cross-destination probe, with A's priority coupling set
            // aside: rebuild the forwarding footprints without priority.
            let (fa, fb) = match (a.rule, b.rule) {
                (Some(ra), Some(rb)) => (
                    composed_fwd_footprint(ra, 0, false),
                    composed_fwd_footprint(rb, 1, false),
                ),
                (Some(ra), None) => (composed_fwd_footprint(ra, 0, false), b.fp_d1.clone()),
                (None, Some(rb)) => (a.fp_d0.clone(), composed_fwd_footprint(rb, 1, false)),
                (None, None) => (a.fp_d0.clone(), b.fp_d1.clone()),
            };
            if independent(&fa, p, &p_nbrs, &fb, q, &q_nbrs) {
                report
                    .cross_dest_independent
                    .push((a.label.to_string(), b.label.to_string()));
            } else {
                push(
                    report,
                    Severity::Violation,
                    "cross-dest-interference",
                    format!(
                        "{} (destination 0) and {} (destination 1) interfere at neighbouring \
                         processors even without A's priority coupling — per-destination \
                         isolation is broken",
                        a.label, b.label
                    ),
                );
            }
        }
    }
}

/// Codec-observer analyses: the packed state codec declares its surface
/// via [`ssmfp_core::codec_footprint`]; packing must be side-effect-free
/// and must read every variable class the rules can write (otherwise the
/// checker's packed visited set conflates distinct configurations).
fn lint_codec(decls: &[RuleDecl], codec: &Footprint, report: &mut LintReport) {
    report.codec_reads = codec.reads.iter().map(|a| a.var.name.to_string()).collect();
    report.codec_reads.sort();
    report.codec_reads.dedup();
    for w in &codec.writes {
        push(
            report,
            Severity::Violation,
            "codec-impure",
            format!(
                "the state codec declares a write to `{}` — packing a configuration must be \
                 a pure observation, never a mutation",
                w.var.name
            ),
        );
    }
    for decl in decls {
        for w in decl.fp_d0.writes.iter().chain(&decl.fp_d1.writes) {
            let covered = codec.reads.iter().any(|r| r.var == w.var);
            if !covered {
                push(
                    report,
                    Severity::Violation,
                    "codec-coverage",
                    format!(
                        "{} writes `{}` but the state codec does not read it — packed states \
                         would silently drop that variable and distinct configurations would \
                         collapse into one visited entry",
                        decl.label, w.var.name
                    ),
                );
            }
        }
    }
    // Deduplicate: the same uncovered class surfaces once per rule × dest.
    report.findings.dedup_by(|a, b| {
        a.code == "codec-coverage" && b.code == "codec-coverage" && a.message == b.message
    });
}

/// Fault-domain analysis: every fault kind the injection engine can plant
/// must confine its writes to variable classes that appear in some
/// declared rule footprint's write-set (union semantics — a whole-node
/// reset legitimately spans both layers' variables). A class no rule
/// writes is either instrumentation (ghost identities, the ledger) or
/// dead state; corrupting it would step outside the model the
/// snap-stabilization oracle quantifies over.
fn lint_fault_domains(decls: &[RuleDecl], report: &mut LintReport) {
    let covered = |class: VarClass| {
        decls.iter().any(|d| {
            d.fp_d0
                .writes
                .iter()
                .chain(&d.fp_d1.writes)
                .any(|w| w.var == class)
        })
    };
    let mut classes: Vec<String> = Vec::new();
    for kind in FaultKind::representatives() {
        for class in kind.write_set() {
            classes.push(class.name.to_string());
            if !covered(class) {
                push(
                    report,
                    Severity::Violation,
                    "fault-domain",
                    format!(
                        "fault kind `{}` writes `{}`, which no declared rule footprint writes — \
                         the injected state would be outside the model and the oracle's \
                         post-fault convergence argument would not cover it",
                        kind.label(),
                        class.name
                    ),
                );
            }
        }
    }
    classes.sort();
    classes.dedup();
    report.fault_write_classes = classes;
    // The same gap surfaces once per (kind, class), and buffer kinds come
    // in two variants with identical labels: deduplicate.
    report.findings.dedup_by(|a, b| {
        a.code == "fault-domain" && b.code == "fault-domain" && a.message == b.message
    });
}

/// The wire surface under audit: the declared link-crossing event kinds
/// and each frame tag's `(label, claimed kind)` mapping. Decoupled from
/// [`ssmfp_core::wire`]'s constants so the red tests can corrupt it.
#[derive(Debug, Clone)]
pub struct WireSurface {
    /// Every event kind declared to cross a link.
    pub kinds: Vec<String>,
    /// Every frame tag and the kind it claims to carry.
    pub tags: Vec<(String, String)>,
    /// Per-client audit stamp fields the handshake body must carry.
    pub stamp_required: Vec<String>,
    /// Stamp fields the codec declares it actually encodes.
    pub stamp_encoded: Vec<String>,
}

/// The shipped wire surface, read off [`FrameTag::ALL`],
/// [`LINK_EVENT_KINDS`] and the client-stamp field declarations.
pub fn default_wire_surface() -> WireSurface {
    WireSurface {
        kinds: LINK_EVENT_KINDS.iter().map(|k| k.to_string()).collect(),
        tags: FrameTag::ALL
            .iter()
            .map(|t| (format!("{t:?}"), t.event_kind().to_string()))
            .collect(),
        stamp_required: CLIENT_STAMP_FIELDS.iter().map(|f| f.to_string()).collect(),
        stamp_encoded: ENCODED_CLIENT_STAMP_FIELDS
            .iter()
            .map(|f| f.to_string())
            .collect(),
    }
}

/// Wire-coverage analysis: the tag ↔ event-kind mapping must be a
/// bijection onto the declared link-crossing kinds.
fn lint_wire_coverage(surface: &WireSurface, report: &mut LintReport) {
    report.wire_tags = surface.tags.clone();
    for kind in &surface.kinds {
        let carriers: Vec<&str> = surface
            .tags
            .iter()
            .filter(|(_, k)| k == kind)
            .map(|(t, _)| t.as_str())
            .collect();
        match carriers.len() {
            0 => push(
                report,
                Severity::Violation,
                "wire-coverage",
                format!(
                    "link-crossing event kind `{kind}` has no frame tag — that traffic cannot \
                     leave the process, so the socket transport would silently diverge from \
                     the in-process channels"
                ),
            ),
            1 => {}
            _ => push(
                report,
                Severity::Violation,
                "wire-coverage",
                format!(
                    "event kind `{kind}` is claimed by {} frame tags ({}) — decoding is \
                     ambiguous, the mapping must be a bijection",
                    carriers.len(),
                    carriers.join(", ")
                ),
            ),
        }
    }
    for (tag, kind) in &surface.tags {
        if !surface.kinds.iter().any(|k| k == kind) {
            push(
                report,
                Severity::Violation,
                "wire-coverage",
                format!(
                    "frame tag `{tag}` claims event kind `{kind}`, which is not declared as \
                     link-crossing — either declare the kind or retire the tag"
                ),
            );
        }
    }
    let mut seen: Vec<&str> = Vec::new();
    for (tag, _) in &surface.tags {
        if seen.contains(&tag.as_str()) {
            push(
                report,
                Severity::Violation,
                "wire-coverage",
                format!("frame tag `{tag}` is declared twice"),
            );
        }
        seen.push(tag);
    }
    // Client-stamp coverage: every field the per-client audit needs on
    // the wire must be one the codec declares it encodes, and vice versa
    // (an encoded-but-unrequired field is dead weight in every frame).
    for f in &surface.stamp_required {
        if !surface.stamp_encoded.contains(f) {
            push(
                report,
                Severity::Violation,
                "wire-coverage",
                format!(
                    "client stamp field `{f}` is required by the per-client audit but the \
                     codec does not declare it encoded — the stamp would be dropped on the \
                     wire and cross-process runs could not render a per-client verdict"
                ),
            );
        }
    }
    for f in &surface.stamp_encoded {
        if !surface.stamp_required.contains(f) {
            push(
                report,
                Severity::Violation,
                "wire-coverage",
                format!(
                    "codec encodes client stamp field `{f}` that no audit requires — \
                     retire the field or declare the requirement"
                ),
            );
        }
    }
}

/// Serializes a report as JSON (hand-rolled: the workspace builds without
/// a registry, so no serde).
pub fn to_json(report: &LintReport) -> String {
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    fn findings(list: Vec<&Finding>) -> String {
        let items: Vec<String> = list
            .iter()
            .map(|f| {
                format!(
                    "{{\"code\":\"{}\",\"message\":\"{}\"}}",
                    esc(f.code),
                    esc(&f.message)
                )
            })
            .collect();
        format!("[{}]", items.join(","))
    }
    fn pairs(list: &[(String, String)]) -> String {
        let items: Vec<String> = list
            .iter()
            .map(|(a, b)| format!("[\"{}\",\"{}\"]", esc(a), esc(b)))
            .collect();
        format!("[{}]", items.join(","))
    }
    let strings = |list: &[String]| -> String {
        let items: Vec<String> = list.iter().map(|v| format!("\"{}\"", esc(v))).collect();
        items.join(",")
    };
    let conc_items: Vec<String> = report
        .conc
        .iter()
        .map(|c| {
            format!(
                "{{\"component\":\"{}\",\"threads\":{},\"locks\":{},\"channels\":{},\
                 \"edges\":{},\"untimed_edges\":{}}}",
                esc(&c.component),
                c.threads,
                c.locks,
                c.channels,
                c.edges,
                c.untimed_edges
            )
        })
        .collect();
    format!(
        "{{\n  \"tool\": \"ssmfp-lint\",\n  \"violations\": {},\n  \"warnings\": {},\n  \
         \"guard_overlaps\": {},\n  \"same_dest_interference\": {},\n  \
         \"cross_dest_independent\": {},\n  \"codec_reads\": [{}],\n  \
         \"fault_write_classes\": [{}],\n  \"wire_tags\": {},\n  \"conc\": [{}]\n}}",
        findings(report.violations().collect()),
        findings(report.warnings().collect()),
        pairs(&report.guard_overlaps),
        pairs(&report.same_dest_interference),
        pairs(&report.cross_dest_independent),
        strings(&report.codec_reads),
        strings(&report.fault_write_classes),
        pairs(&report.wire_tags),
        conc_items.join(","),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssmfp_core::footprint::{BUF_E, BUF_R};
    use ssmfp_kernel::footprint::DestScope;

    #[test]
    fn shipped_declarations_are_clean() {
        let report = analyze_default();
        assert_eq!(
            report.violations().count(),
            0,
            "shipped rules must lint clean: {:?}",
            report.findings
        );
        assert_eq!(report.warnings().count(), 0, "{:?}", report.findings);
        assert_eq!(report.exit_code(true), 0);
    }

    #[test]
    fn overlap_matrix_matches_allow_list() {
        let report = analyze_default();
        let mut got: Vec<(String, String)> = report.guard_overlaps.clone();
        got.sort();
        let mut want: Vec<(String, String)> = ALLOWED_OVERLAPS
            .iter()
            .map(|&(a, b)| (a.to_string(), b.to_string()))
            .collect();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn cross_destination_isolation_holds_for_all_pairs() {
        let report = analyze_default();
        let decls = default_decls();
        // Every unordered pair (including self-pairs) must be isolated.
        let expected = decls.len() * (decls.len() + 1) / 2;
        assert_eq!(report.cross_dest_independent.len(), expected);
    }

    #[test]
    fn same_dest_interference_includes_the_handshake() {
        let report = analyze_default();
        let has = |a: &str, b: &str| {
            report
                .same_dest_interference
                .iter()
                .any(|(x, y)| (x == a && y == b) || (x == b && y == a))
        };
        // R3 writes bufR which R4's certification guard reads.
        assert!(has("R3", "R4"));
        // A's corrections mask every forwarding rule under priority.
        assert!(has("A", "R6"));
    }

    #[test]
    fn corrupted_neighbor_write_is_caught() {
        let mut decls = default_decls();
        let r2 = decls.iter_mut().find(|d| d.label == "R2").unwrap();
        r2.fp_d0.writes.push(Access {
            var: BUF_R,
            locus: Locus::Neighbors,
            dest: DestScope::One(0),
        });
        let report = analyze(&decls);
        assert!(report.findings.iter().any(|f| f.code == "non-local-write"));
        assert_ne!(report.exit_code(false), 0);
    }

    #[test]
    fn corrupted_ownership_is_caught() {
        // The acceptance-criterion corruption: R2's declaration claims it
        // writes `parent` (owned by A) instead of its own emission buffer.
        let mut decls = default_decls();
        let r2 = decls.iter_mut().find(|d| d.label == "R2").unwrap();
        for fp in [&mut r2.fp_d0, &mut r2.fp_d1] {
            for w in fp.writes.iter_mut() {
                if w.var == BUF_E {
                    w.var = ssmfp_routing::footprint::PARENT;
                }
            }
        }
        let report = analyze(&decls);
        assert!(
            report.violations().any(|f| f.code == "ownership"),
            "{:?}",
            report.findings
        );
        assert_ne!(report.exit_code(false), 0);
    }

    #[test]
    fn duplicate_access_is_a_warning_only() {
        let mut decls = default_decls();
        let first = decls[0].fp_d0.reads[0];
        decls[0].fp_d0.reads.push(first);
        let report = analyze(&decls);
        assert!(report.warnings().any(|f| f.code == "duplicate-access"));
        assert_eq!(report.exit_code(false), 0);
        assert_ne!(report.exit_code(true), 0);
    }

    #[test]
    fn shipped_codec_is_a_covering_observer() {
        let report = analyze_default();
        assert!(
            !report.findings.iter().any(|f| f.code.starts_with("codec-")),
            "{:?}",
            report.findings
        );
        // Every class some rule writes is read back by the codec.
        for decl in default_decls() {
            for w in decl.fp_d0.writes.iter().chain(&decl.fp_d1.writes) {
                assert!(
                    report.codec_reads.contains(&w.var.name.to_string()),
                    "codec does not read `{}`",
                    w.var.name
                );
            }
        }
    }

    #[test]
    fn codec_write_is_caught_as_impure() {
        let mut codec = codec_footprint();
        codec.writes.push(Access {
            var: BUF_R,
            locus: Locus::Me,
            dest: DestScope::All,
        });
        let mut report = LintReport::default();
        lint_codec(&default_decls(), &codec, &mut report);
        assert!(report.violations().any(|f| f.code == "codec-impure"));
    }

    #[test]
    fn missing_codec_read_is_caught_as_coverage_gap() {
        let mut codec = codec_footprint();
        codec.reads.retain(|a| a.var != BUF_E);
        let mut report = LintReport::default();
        lint_codec(&default_decls(), &codec, &mut report);
        let gaps: Vec<_> = report
            .violations()
            .filter(|f| f.code == "codec-coverage")
            .collect();
        assert!(
            gaps.iter().all(|f| f.message.contains("bufE")) && !gaps.is_empty(),
            "{gaps:?}"
        );
    }

    #[test]
    fn fault_domains_are_within_declared_footprints() {
        let report = analyze_default();
        assert!(
            !report.findings.iter().any(|f| f.code == "fault-domain"),
            "{:?}",
            report.findings
        );
        // The union surface the injection engine may touch, by class name.
        for class in ["bufR", "bufE", "choicePtr", "request", "dist", "parent"] {
            assert!(
                report.fault_write_classes.contains(&class.to_string()),
                "missing {class}: {:?}",
                report.fault_write_classes
            );
        }
    }

    #[test]
    fn fault_outside_declared_domains_is_caught() {
        // Corrupt the declarations so no rule admits writing `choicePtr`:
        // the choice-scramble (and node-reset) faults now write outside
        // every declared footprint and the lint must go red.
        let mut decls = default_decls();
        for d in &mut decls {
            for fp in [&mut d.fp_d0, &mut d.fp_d1] {
                fp.writes
                    .retain(|w| w.var != ssmfp_core::footprint::CHOICE_PTR);
            }
        }
        let report = analyze(&decls);
        let gaps: Vec<_> = report
            .violations()
            .filter(|f| f.code == "fault-domain")
            .collect();
        assert!(
            gaps.iter().any(|f| f.message.contains("choice"))
                && gaps.iter().any(|f| f.message.contains("reset")),
            "{gaps:?}"
        );
        assert_ne!(report.exit_code(false), 0);
    }

    #[test]
    fn shipped_wire_surface_is_a_bijection() {
        let report = analyze_default();
        assert!(
            !report.findings.iter().any(|f| f.code == "wire-coverage"),
            "{:?}",
            report.findings
        );
        assert_eq!(report.wire_tags.len(), LINK_EVENT_KINDS.len());
    }

    #[test]
    fn uncovered_link_kind_is_caught() {
        // Red test: declare a new link-crossing kind no tag carries.
        let mut surface = default_wire_surface();
        surface.kinds.push("port.preempt".to_string());
        let mut report = LintReport::default();
        lint_wire_coverage(&surface, &mut report);
        assert!(report
            .violations()
            .any(|f| f.code == "wire-coverage" && f.message.contains("port.preempt")));
    }

    #[test]
    fn ambiguous_and_stray_tags_are_caught() {
        // Two tags claiming one kind, and a tag claiming an undeclared kind.
        let mut surface = default_wire_surface();
        surface
            .tags
            .push(("Offer2".to_string(), "port.offer".to_string()));
        surface
            .tags
            .push(("Gossip".to_string(), "control.gossip".to_string()));
        let mut report = LintReport::default();
        lint_wire_coverage(&surface, &mut report);
        assert!(report
            .violations()
            .any(|f| f.code == "wire-coverage" && f.message.contains("2 frame tags")));
        assert!(report
            .violations()
            .any(|f| f.code == "wire-coverage" && f.message.contains("control.gossip")));
        assert_ne!(report.exit_code(false), 0);
    }

    #[test]
    fn duplicate_tag_is_caught() {
        let mut surface = default_wire_surface();
        surface
            .tags
            .push(("Offer".to_string(), "routing.dv".to_string()));
        let mut report = LintReport::default();
        lint_wire_coverage(&surface, &mut report);
        assert!(report
            .violations()
            .any(|f| f.code == "wire-coverage" && f.message.contains("declared twice")));
    }

    #[test]
    fn stamp_dropped_from_codec_is_caught() {
        // Red test: the audit requires both stamp fields; a codec that
        // stops encoding one (say, a refactor drops `client_seq` from
        // `put_msg`) must fail wire-coverage.
        let mut surface = default_wire_surface();
        let dropped = surface.stamp_encoded.pop().expect("shipped stamp fields");
        let mut report = LintReport::default();
        lint_wire_coverage(&surface, &mut report);
        assert!(report
            .violations()
            .any(|f| f.code == "wire-coverage" && f.message.contains(&dropped)));
        assert_ne!(report.exit_code(false), 0);
        // And the mirror: encoding a stamp field no audit requires.
        let mut surface = default_wire_surface();
        surface.stamp_encoded.push("stamp.vintage".to_string());
        let mut report = LintReport::default();
        lint_wire_coverage(&surface, &mut report);
        assert!(report
            .violations()
            .any(|f| f.code == "wire-coverage" && f.message.contains("stamp.vintage")));
    }

    #[test]
    fn json_is_well_formed_enough() {
        let json = to_json(&analyze_default());
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"guard_overlaps\""));
        assert!(json.contains("[\"R1\",\"R4\"]"));
        // Balanced braces/brackets (no serde, so keep the format honest).
        let balance = |open: char, close: char| {
            json.chars().filter(|&c| c == open).count()
                == json.chars().filter(|&c| c == close).count()
        };
        assert!(balance('{', '}') && balance('[', ']'));
    }
}
