//! `ssmfp-lint` — static rule-footprint analyzer.
//!
//! ```text
//! cargo run -p ssmfp-lint            # JSON report on stdout, summary on stderr
//! cargo run -p ssmfp-lint -- -D     # also fail (exit 1) on warnings
//! ```
//!
//! Exit status: 0 when the shipped rule declarations pass every analysis,
//! 1 when any violation (or, under `-D`, any finding) exists.

use ssmfp_lint::{analyze_default, to_json, Severity};

fn main() {
    let mut deny_warnings = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "-D" | "--deny-warnings" => deny_warnings = true,
            "-h" | "--help" => {
                eprintln!("usage: ssmfp-lint [-D|--deny-warnings]");
                return;
            }
            other => {
                eprintln!("ssmfp-lint: unknown argument `{other}` (try --help)");
                std::process::exit(2);
            }
        }
    }

    let report = analyze_default();
    println!("{}", to_json(&report));

    for f in &report.findings {
        let tag = match f.severity {
            Severity::Violation => "violation",
            Severity::Warning => "warning",
        };
        eprintln!("{tag}[{}]: {}", f.code, f.message);
    }
    eprintln!(
        "ssmfp-lint: {} violation(s), {} warning(s); {} guard-overlap pair(s), \
         {} same-destination interference edge(s), {} cross-destination independent pair(s)",
        report.violations().count(),
        report.warnings().count(),
        report.guard_overlaps.len(),
        report.same_dest_interference.len(),
        report.cross_dest_independent.len(),
    );
    std::process::exit(report.exit_code(deny_warnings));
}
