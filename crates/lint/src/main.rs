//! `ssmfp-lint` — static rule-footprint analyzer.
//!
//! ```text
//! cargo run -p ssmfp-lint            # JSON report on stdout, summary on stderr
//! cargo run -p ssmfp-lint -- -D     # also fail (exit 1) on warnings
//! cargo run -p ssmfp-lint -- --json report.json   # write the report to a file
//! ```
//!
//! Exit status: 0 when the shipped rule declarations pass every analysis,
//! 1 when any violation (or, under `-D`, any finding) exists, 2 on usage
//! errors.

use ssmfp_lint::{analyze_default, to_json, Severity};

fn die(msg: &str) -> ! {
    eprintln!("ssmfp-lint: {msg}");
    std::process::exit(2);
}

fn main() {
    let mut deny_warnings = false;
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-D" | "--deny-warnings" => deny_warnings = true,
            "--json" => {
                json_path = Some(
                    args.next()
                        .unwrap_or_else(|| die("--json needs a file ('-' = stdout)")),
                );
            }
            "--version" => {
                println!("ssmfp-lint {}", env!("CARGO_PKG_VERSION"));
                return;
            }
            "-h" | "--help" => {
                eprintln!("usage: ssmfp-lint [-D|--deny-warnings] [--json FILE] [--version]");
                return;
            }
            other => die(&format!("unknown argument `{other}` (try --help)")),
        }
    }

    let report = analyze_default();
    let json = to_json(&report);
    match json_path.as_deref() {
        None | Some("-") => println!("{json}"),
        Some(path) => {
            if let Err(e) = std::fs::write(path, format!("{json}\n")) {
                die(&format!("cannot write {path}: {e}"));
            }
            eprintln!("ssmfp-lint: report written to {path}");
        }
    }

    for f in &report.findings {
        let tag = match f.severity {
            Severity::Violation => "violation",
            Severity::Warning => "warning",
        };
        eprintln!("{tag}[{}]: {}", f.code, f.message);
    }
    eprintln!(
        "ssmfp-lint: {} violation(s), {} warning(s); {} guard-overlap pair(s), \
         {} same-destination interference edge(s), {} cross-destination independent pair(s)",
        report.violations().count(),
        report.warnings().count(),
        report.guard_overlaps.len(),
        report.same_dest_interference.len(),
        report.cross_dest_independent.len(),
    );
    std::process::exit(report.exit_code(deny_warnings));
}
