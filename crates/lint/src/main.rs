//! `ssmfp-lint` — static rule-footprint and concurrency-model analyzer.
//!
//! ```text
//! cargo run -p ssmfp-lint            # JSON report on stdout, summary on stderr
//! cargo run -p ssmfp-lint -- -D     # also fail (exit 1) on warnings
//! cargo run -p ssmfp-lint -- --json report.json   # write the report to a file
//! cargo run -p ssmfp-lint -- --list               # print the pass catalog
//! cargo run -p ssmfp-lint -- --only conc-deadlock # gate on selected passes only
//! cargo run -p ssmfp-lint -- --skip guard-overlap # run all but the named passes
//! ```
//!
//! Exit status: 0 when the shipped declarations pass every (selected)
//! analysis, 1 when any violation (or, under `-D`, any finding) exists,
//! 2 on usage errors.

use ssmfp_lint::{analyze_default, known_pass, to_json, Severity, PASSES};

fn die(msg: &str) -> ! {
    eprintln!("ssmfp-lint: {msg}");
    std::process::exit(2);
}

fn pass_arg(args: &mut impl Iterator<Item = String>, flag: &str) -> String {
    let name = args
        .next()
        .unwrap_or_else(|| die(&format!("{flag} needs a pass name (see --list)")));
    if !known_pass(&name) {
        die(&format!("unknown pass `{name}` (see --list)"));
    }
    name
}

fn main() {
    let mut deny_warnings = false;
    let mut json_path: Option<String> = None;
    let mut only: Vec<String> = Vec::new();
    let mut skip: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-D" | "--deny-warnings" => deny_warnings = true,
            "--json" => {
                json_path = Some(
                    args.next()
                        .unwrap_or_else(|| die("--json needs a file ('-' = stdout)")),
                );
            }
            "--only" => only.push(pass_arg(&mut args, "--only")),
            "--skip" => skip.push(pass_arg(&mut args, "--skip")),
            "--list" => {
                let width = PASSES.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
                for (name, doc) in PASSES {
                    println!("{name:width$}  {doc}");
                }
                return;
            }
            "--version" => {
                println!("ssmfp-lint {}", env!("CARGO_PKG_VERSION"));
                return;
            }
            "-h" | "--help" => {
                eprintln!(
                    "usage: ssmfp-lint [-D|--deny-warnings] [--json FILE] [--only PASS]... \
                     [--skip PASS]... [--list] [--version]"
                );
                return;
            }
            other => die(&format!("unknown argument `{other}` (try --help)")),
        }
    }

    let mut report = analyze_default();
    report.retain_passes(&only, &skip);
    let json = to_json(&report);
    match json_path.as_deref() {
        None | Some("-") => println!("{json}"),
        Some(path) => {
            if let Err(e) = std::fs::write(path, format!("{json}\n")) {
                die(&format!("cannot write {path}: {e}"));
            }
            eprintln!("ssmfp-lint: report written to {path}");
        }
    }

    for f in &report.findings {
        let tag = match f.severity {
            Severity::Violation => "violation",
            Severity::Warning => "warning",
        };
        eprintln!("{tag}[{}]: {}", f.code, f.message);
    }
    eprintln!(
        "ssmfp-lint: {} violation(s), {} warning(s); {} guard-overlap pair(s), \
         {} same-destination interference edge(s), {} cross-destination independent pair(s), \
         {} concurrency model(s)",
        report.violations().count(),
        report.warnings().count(),
        report.guard_overlaps.len(),
        report.same_dest_interference.len(),
        report.cross_dest_independent.len(),
        report.conc.len(),
    );
    std::process::exit(report.exit_code(deny_warnings));
}
