//! The `conc-*` lint family: static analyses over declared concurrency
//! models ([`ssmfp_core::conc::ConcModel`]).
//!
//! The runtime layers (`crates/cluster`, `crates/mp`) declare their
//! thread roles, lock ranks, channel bounds and blocking edges; these
//! passes check the declarations the same way the footprint passes check
//! the protocol rules:
//!
//! * **`conc-coverage`** — referential integrity: every name an edge or
//!   channel mentions is declared, no duplicates, every spawner is a
//!   declared role (or `extern`). The *runtime* half — every observed
//!   thread appears in the model — runs in the debug-build test suites
//!   via [`ssmfp_core::conc::ConcModel::undeclared_observed`].
//! * **`conc-unbounded`** — every cross-thread channel declares a bound
//!   and a full-queue policy. An unbounded queue is an unbounded memory
//!   and latency liability that also hides from the deadlock analysis.
//! * **`conc-hold-across-block`** — no declared edge blocks on a
//!   socket/queue/accept while holding a lock. Lock acquisitions
//!   themselves are governed by rank order instead.
//! * **`conc-deadlock`** — two checks over the declared graph. First,
//!   lock-rank inversions: an edge acquiring a lock whose rank is not
//!   strictly above every lock it holds. Second, circular waits: a
//!   wait-for graph is built from the *untimed* edges (a timed wait
//!   cannot wedge), resolving each wait to the roles that can unblock it
//!   — a full-channel send waits for the receiver, an empty-channel
//!   receive waits for the senders, a socket operation waits for the
//!   peer role, a lock waits for every role that blocks while holding
//!   it. Elementary cycles are reported as violations, except cycles
//!   that wait on both the *full* and the *empty* side of one FIFO
//!   resource: a queue (or socket buffer) cannot be simultaneously full
//!   and empty, so such a cycle is infeasible. (The prune reasons about
//!   one resource instance; it is sound for this model because full- and
//!   empty-waits of each resource pair off per connection/queue
//!   instance.)

use crate::{push, LintReport, Severity};
use ssmfp_core::conc::{ConcModel, FullPolicy, WaitPoint, EXTERN_ROLE};
use std::collections::{BTreeMap, BTreeSet};

/// Summary of one analyzed component, carried in the JSON report.
#[derive(Debug, Clone)]
pub struct ConcComponentSummary {
    /// Component name.
    pub component: String,
    /// Declared thread roles.
    pub threads: usize,
    /// Declared locks.
    pub locks: usize,
    /// Declared channels.
    pub channels: usize,
    /// Declared blocking edges.
    pub edges: usize,
    /// Edges without a deadline (the deadlock-relevant ones).
    pub untimed_edges: usize,
}

/// Runs every `conc-*` pass over one model.
pub fn lint_conc_model(model: &ConcModel, report: &mut LintReport) {
    report.conc.push(ConcComponentSummary {
        component: model.component.to_string(),
        threads: model.threads.len(),
        locks: model.locks.len(),
        channels: model.channels.len(),
        edges: model.edges.len(),
        untimed_edges: model.edges.iter().filter(|e| !e.timed).count(),
    });
    lint_conc_coverage(model, report);
    lint_conc_unbounded(model, report);
    lint_conc_hold_across_block(model, report);
    lint_conc_deadlock(model, report);
}

/// `conc-coverage`: the declaration is internally closed.
pub fn lint_conc_coverage(model: &ConcModel, report: &mut LintReport) {
    let comp = model.component;
    let mut seen = BTreeSet::new();
    for t in &model.threads {
        if !seen.insert(t.role) {
            push(
                report,
                Severity::Violation,
                "conc-coverage",
                format!("{comp}: thread role `{}` is declared twice", t.role),
            );
        }
        if t.spawned_by != EXTERN_ROLE && model.thread(t.spawned_by).is_none() {
            push(
                report,
                Severity::Violation,
                "conc-coverage",
                format!(
                    "{comp}: thread role `{}` is spawned by `{}`, which is not a declared role \
                     (use `{EXTERN_ROLE}` for harness threads)",
                    t.role, t.spawned_by
                ),
            );
        }
    }
    let mut seen = BTreeSet::new();
    for l in &model.locks {
        if !seen.insert(l.name) {
            push(
                report,
                Severity::Violation,
                "conc-coverage",
                format!("{comp}: lock `{}` is declared twice", l.name),
            );
        }
    }
    let mut seen = BTreeSet::new();
    for c in &model.channels {
        if !seen.insert(c.name) {
            push(
                report,
                Severity::Violation,
                "conc-coverage",
                format!("{comp}: channel `{}` is declared twice", c.name),
            );
        }
        for role in c.senders.iter().chain(std::iter::once(&c.receiver)) {
            if model.thread(role).is_none() {
                push(
                    report,
                    Severity::Violation,
                    "conc-coverage",
                    format!(
                        "{comp}: channel `{}` names role `{role}`, which is not declared",
                        c.name
                    ),
                );
            }
        }
    }
    for e in &model.edges {
        if model.thread(e.thread).is_none() {
            push(
                report,
                Severity::Violation,
                "conc-coverage",
                format!(
                    "{comp}: a blocking edge belongs to `{}`, which is not a declared role",
                    e.thread
                ),
            );
        }
        for h in &e.holding {
            if model.lock(h).is_none() {
                push(
                    report,
                    Severity::Violation,
                    "conc-coverage",
                    format!(
                        "{comp}: `{}` holds undeclared lock `{h}` across a blocking edge",
                        e.thread
                    ),
                );
            }
        }
        match e.waits {
            WaitPoint::ChanSend(c) | WaitPoint::ChanRecv(c) => {
                if model.channel(c).is_none() {
                    push(
                        report,
                        Severity::Violation,
                        "conc-coverage",
                        format!("{comp}: `{}` blocks on undeclared channel `{c}`", e.thread),
                    );
                } else if matches!(e.waits, WaitPoint::ChanSend(_))
                    && model.channel(c).and_then(|d| d.policy) == Some(FullPolicy::Shed)
                {
                    push(
                        report,
                        Severity::Warning,
                        "conc-coverage",
                        format!(
                            "{comp}: `{}` declares a blocking send on `{c}`, but that channel \
                             sheds when full and can never block a sender — stale edge",
                            e.thread
                        ),
                    );
                }
            }
            WaitPoint::LockAcquire(l) => {
                if model.lock(l).is_none() {
                    push(
                        report,
                        Severity::Violation,
                        "conc-coverage",
                        format!("{comp}: `{}` blocks on undeclared lock `{l}`", e.thread),
                    );
                }
            }
            WaitPoint::SockRead(p) | WaitPoint::SockWrite(p) | WaitPoint::Accept(p) => {
                if model.thread(p).is_none() {
                    push(
                        report,
                        Severity::Violation,
                        "conc-coverage",
                        format!(
                            "{comp}: `{}` waits on peer role `{p}`, which is not declared",
                            e.thread
                        ),
                    );
                }
            }
        }
    }
}

/// `conc-unbounded`: every channel declares a bound and a policy.
pub fn lint_conc_unbounded(model: &ConcModel, report: &mut LintReport) {
    for c in &model.channels {
        if c.bound.is_none() {
            push(
                report,
                Severity::Violation,
                "conc-unbounded",
                format!(
                    "{}: channel `{}` declares no bound — every cross-thread channel must be \
                     bounded (unbounded queues hide from the deadlock analysis and are an \
                     unbounded memory/latency liability)",
                    model.component, c.name
                ),
            );
        }
        if c.policy.is_none() {
            push(
                report,
                Severity::Violation,
                "conc-unbounded",
                format!(
                    "{}: channel `{}` declares no full-queue policy — say whether a full queue \
                     blocks the sender (counted backpressure) or sheds the message",
                    model.component, c.name
                ),
            );
        }
    }
}

/// `conc-hold-across-block`: no lock held across a socket/queue wait.
pub fn lint_conc_hold_across_block(model: &ConcModel, report: &mut LintReport) {
    for e in &model.edges {
        if e.holding.is_empty() || matches!(e.waits, WaitPoint::LockAcquire(_)) {
            continue;
        }
        push(
            report,
            Severity::Violation,
            "conc-hold-across-block",
            format!(
                "{}: `{}` holds {:?} across a {} — a lock held across a blocking I/O or queue \
                 wait stalls every contender for as long as the peer takes",
                model.component,
                e.thread,
                e.holding,
                e.waits.describe()
            ),
        );
    }
}

/// Polarity of a wait on a FIFO resource, for the full+empty prune rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Polarity {
    /// Waiting for space (send on full queue, write to full buffer).
    Full,
    /// Waiting for data (receive on empty queue, read from empty buffer).
    Empty,
    /// Lock waits have no pairing polarity.
    Lock,
}

#[derive(Debug, Clone)]
struct WaitArc {
    from: &'static str,
    to: &'static str,
    resource: String,
    polarity: Polarity,
    label: String,
}

fn sock_resource(a: &str, b: &str) -> String {
    if a <= b {
        format!("sock:{a}<->{b}")
    } else {
        format!("sock:{b}<->{a}")
    }
}

/// `conc-deadlock`: rank inversions + circular waits.
pub fn lint_conc_deadlock(model: &ConcModel, report: &mut LintReport) {
    // Lock-rank inversions (checked on every edge, timed or not: an
    // out-of-order acquisition is wrong even under a deadline).
    for e in &model.edges {
        if let WaitPoint::LockAcquire(l) = e.waits {
            let Some(target) = model.lock(l) else {
                continue;
            };
            if e.holding.contains(&l) {
                push(
                    report,
                    Severity::Violation,
                    "conc-deadlock",
                    format!(
                        "{}: `{}` acquires lock `{l}` while already holding it — self-deadlock",
                        model.component, e.thread
                    ),
                );
                continue;
            }
            for h in &e.holding {
                let Some(held) = model.lock(h) else { continue };
                if held.rank >= target.rank {
                    push(
                        report,
                        Severity::Violation,
                        "conc-deadlock",
                        format!(
                            "{}: `{}` acquires lock `{l}` (rank {}) while holding `{h}` (rank \
                             {}) — the declared acquisition order is strictly increasing rank",
                            model.component, e.thread, target.rank, held.rank
                        ),
                    );
                }
            }
        }
    }

    // Wait-for graph over the untimed edges.
    let mut arcs: Vec<WaitArc> = Vec::new();
    for e in model.edges.iter().filter(|e| !e.timed) {
        let label = format!("{} {}", e.thread, e.waits.describe());
        match e.waits {
            WaitPoint::ChanSend(c) => {
                let Some(decl) = model.channel(c) else {
                    continue;
                };
                // A shedding channel never blocks its senders.
                if decl.policy == Some(FullPolicy::Shed) {
                    continue;
                }
                arcs.push(WaitArc {
                    from: e.thread,
                    to: decl.receiver,
                    resource: format!("chan:{c}"),
                    polarity: Polarity::Full,
                    label: label.clone(),
                });
            }
            WaitPoint::ChanRecv(c) => {
                let Some(decl) = model.channel(c) else {
                    continue;
                };
                for &s in &decl.senders {
                    arcs.push(WaitArc {
                        from: e.thread,
                        to: s,
                        resource: format!("chan:{c}"),
                        polarity: Polarity::Empty,
                        label: label.clone(),
                    });
                }
            }
            WaitPoint::LockAcquire(l) => {
                // Unblocked by whoever can be blocked while holding it; a
                // holder that only blocks under a deadline releases in
                // bounded time and creates no wait-for edge.
                let holders: BTreeSet<&'static str> = model
                    .edges
                    .iter()
                    .filter(|h| !h.timed && h.holding.contains(&l) && h.thread != e.thread)
                    .map(|h| h.thread)
                    .collect();
                for to in holders {
                    arcs.push(WaitArc {
                        from: e.thread,
                        to,
                        resource: format!("lock:{l}"),
                        polarity: Polarity::Lock,
                        label: label.clone(),
                    });
                }
            }
            WaitPoint::SockRead(p) => arcs.push(WaitArc {
                from: e.thread,
                to: p,
                resource: sock_resource(e.thread, p),
                polarity: Polarity::Empty,
                label: label.clone(),
            }),
            WaitPoint::SockWrite(p) => arcs.push(WaitArc {
                from: e.thread,
                to: p,
                resource: sock_resource(e.thread, p),
                polarity: Polarity::Full,
                label: label.clone(),
            }),
            WaitPoint::Accept(p) => arcs.push(WaitArc {
                from: e.thread,
                to: p,
                resource: format!("accept:{}<-{p}", e.thread),
                polarity: Polarity::Empty,
                label: label.clone(),
            }),
        }
    }

    // Enumerate elementary cycles (tiny role graphs: DFS with the
    // smallest-role-starts-the-cycle convention to dedupe rotations).
    let mut by_from: BTreeMap<&str, Vec<&WaitArc>> = BTreeMap::new();
    for a in &arcs {
        by_from.entry(a.from).or_default().push(a);
    }
    let roles: Vec<&str> = by_from.keys().copied().collect();
    let mut reported: BTreeSet<String> = BTreeSet::new();
    for &start in &roles {
        let mut path: Vec<&WaitArc> = Vec::new();
        let mut on_path: BTreeSet<&str> = BTreeSet::new();
        dfs_cycles(
            start,
            start,
            &by_from,
            &mut path,
            &mut on_path,
            &mut |cycle: &[&WaitArc]| {
                if !feasible(cycle) {
                    return;
                }
                let desc = cycle
                    .iter()
                    .map(|a| a.label.as_str())
                    .collect::<Vec<_>>()
                    .join("; ");
                if reported.insert(desc.clone()) {
                    push(
                        report,
                        Severity::Violation,
                        "conc-deadlock",
                        format!(
                            "{}: circular wait — {desc} — every thread in the cycle waits on \
                             the next with no deadline; break the cycle with a bound policy, a \
                             timeout, or a re-layered resource",
                            model.component
                        ),
                    );
                }
            },
        );
    }
}

/// The full+empty prune: a cycle needing one FIFO resource to be both
/// full and empty at once cannot happen.
fn feasible(cycle: &[&WaitArc]) -> bool {
    for a in cycle {
        if a.polarity == Polarity::Full
            && cycle
                .iter()
                .any(|b| b.resource == a.resource && b.polarity == Polarity::Empty)
        {
            return false;
        }
    }
    true
}

fn dfs_cycles<'a>(
    start: &'a str,
    at: &'a str,
    by_from: &BTreeMap<&str, Vec<&'a WaitArc>>,
    path: &mut Vec<&'a WaitArc>,
    on_path: &mut BTreeSet<&'a str>,
    found: &mut impl FnMut(&[&'a WaitArc]),
) {
    on_path.insert(at);
    for &arc in by_from.get(at).into_iter().flatten() {
        if arc.to == start {
            path.push(arc);
            found(path);
            path.pop();
        } else if arc.to > start && !on_path.contains(arc.to) {
            // Only roles lexicographically above the start extend the
            // path: every cycle is found exactly once, rooted at its
            // smallest role.
            path.push(arc);
            dfs_cycles(start, arc.to, by_from, path, on_path, found);
            path.pop();
        }
    }
    on_path.remove(at);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssmfp_core::conc::{
        BlockingEdge, ChannelDecl, ConcModel, LockDecl, Multiplicity, ThreadDecl,
    };

    fn thread(role: &'static str) -> ThreadDecl {
        ThreadDecl {
            role,
            multiplicity: Multiplicity::One,
            spawned_by: EXTERN_ROLE,
            doc: "test",
        }
    }

    fn codes(report: &LintReport) -> Vec<&'static str> {
        report.findings.iter().map(|f| f.code).collect()
    }

    #[test]
    fn shipped_conc_models_are_clean() {
        for model in crate::default_conc_models() {
            let mut report = LintReport::default();
            lint_conc_model(&model, &mut report);
            assert!(
                report.findings.is_empty(),
                "{}: {:?}",
                model.component,
                report.findings
            );
        }
    }

    #[test]
    fn planted_lock_cycle_is_caught() {
        // Classic AB/BA: t1 takes `a` then `b`, t2 takes `b` then `a`.
        let model = ConcModel {
            component: "red",
            threads: vec![thread("t1"), thread("t2")],
            locks: vec![
                LockDecl {
                    name: "a",
                    rank: 1,
                    doc: "test",
                },
                LockDecl {
                    name: "b",
                    rank: 2,
                    doc: "test",
                },
            ],
            channels: vec![],
            edges: vec![
                BlockingEdge {
                    thread: "t1",
                    waits: WaitPoint::LockAcquire("b"),
                    holding: vec!["a"],
                    timed: false,
                },
                BlockingEdge {
                    thread: "t2",
                    waits: WaitPoint::LockAcquire("a"),
                    holding: vec!["b"],
                    timed: false,
                },
            ],
        };
        let mut report = LintReport::default();
        lint_conc_deadlock(&model, &mut report);
        // t2's acquisition inverts the rank order…
        assert!(
            report
                .violations()
                .any(|f| f.code == "conc-deadlock" && f.message.contains("rank")),
            "{:?}",
            report.findings
        );
        // …and the wait-for graph has the t1 ⇄ t2 cycle.
        assert!(
            report
                .violations()
                .any(|f| f.code == "conc-deadlock" && f.message.contains("circular wait")),
            "{:?}",
            report.findings
        );
    }

    #[test]
    fn planted_channel_send_cycle_is_caught() {
        // Two bounded Block channels in a ring: both senders can be stuck
        // on a full queue whose receiver is the other stuck sender.
        let model = ConcModel {
            component: "red",
            threads: vec![thread("t1"), thread("t2")],
            locks: vec![],
            channels: vec![
                ChannelDecl {
                    name: "x",
                    senders: vec!["t1"],
                    receiver: "t2",
                    bound: Some(8),
                    policy: Some(FullPolicy::Block),
                    doc: "test",
                },
                ChannelDecl {
                    name: "y",
                    senders: vec!["t2"],
                    receiver: "t1",
                    bound: Some(8),
                    policy: Some(FullPolicy::Block),
                    doc: "test",
                },
            ],
            edges: vec![
                BlockingEdge {
                    thread: "t1",
                    waits: WaitPoint::ChanSend("x"),
                    holding: vec![],
                    timed: false,
                },
                BlockingEdge {
                    thread: "t2",
                    waits: WaitPoint::ChanSend("y"),
                    holding: vec![],
                    timed: false,
                },
            ],
        };
        let mut report = LintReport::default();
        lint_conc_deadlock(&model, &mut report);
        assert!(
            report
                .violations()
                .any(|f| f.code == "conc-deadlock" && f.message.contains("circular wait")),
            "{:?}",
            report.findings
        );
    }

    #[test]
    fn full_empty_prune_discards_infeasible_cycles() {
        // Producer blocked sending (queue full) + consumer blocked
        // receiving (queue empty) on the SAME channel is a 2-cycle in the
        // raw graph but cannot happen: one queue is not both full and
        // empty.
        let model = ConcModel {
            component: "ok",
            threads: vec![thread("prod"), thread("cons")],
            locks: vec![],
            channels: vec![ChannelDecl {
                name: "q",
                senders: vec!["prod"],
                receiver: "cons",
                bound: Some(8),
                policy: Some(FullPolicy::Block),
                doc: "test",
            }],
            edges: vec![
                BlockingEdge {
                    thread: "prod",
                    waits: WaitPoint::ChanSend("q"),
                    holding: vec![],
                    timed: false,
                },
                BlockingEdge {
                    thread: "cons",
                    waits: WaitPoint::ChanRecv("q"),
                    holding: vec![],
                    timed: false,
                },
            ],
        };
        let mut report = LintReport::default();
        lint_conc_deadlock(&model, &mut report);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn unbounded_or_policyless_channel_is_caught() {
        let model = ConcModel {
            component: "red",
            threads: vec![thread("t1"), thread("t2")],
            locks: vec![],
            channels: vec![
                ChannelDecl {
                    name: "nobound",
                    senders: vec!["t1"],
                    receiver: "t2",
                    bound: None,
                    policy: Some(FullPolicy::Block),
                    doc: "test",
                },
                ChannelDecl {
                    name: "nopolicy",
                    senders: vec!["t1"],
                    receiver: "t2",
                    bound: Some(4),
                    policy: None,
                    doc: "test",
                },
            ],
            edges: vec![],
        };
        let mut report = LintReport::default();
        lint_conc_unbounded(&model, &mut report);
        assert_eq!(codes(&report), vec!["conc-unbounded", "conc-unbounded"]);
        assert!(report
            .findings
            .iter()
            .any(|f| f.message.contains("nobound")));
        assert!(report
            .findings
            .iter()
            .any(|f| f.message.contains("nopolicy")));
    }

    #[test]
    fn hold_across_block_is_caught() {
        let model = ConcModel {
            component: "red",
            threads: vec![thread("t1"), thread("t2")],
            locks: vec![LockDecl {
                name: "stats",
                rank: 1,
                doc: "test",
            }],
            channels: vec![],
            edges: vec![BlockingEdge {
                thread: "t1",
                waits: WaitPoint::SockRead("t2"),
                holding: vec!["stats"],
                timed: false,
            }],
        };
        let mut report = LintReport::default();
        lint_conc_hold_across_block(&model, &mut report);
        assert_eq!(codes(&report), vec!["conc-hold-across-block"]);
    }

    #[test]
    fn dangling_names_are_caught_by_coverage() {
        let model = ConcModel {
            component: "red",
            threads: vec![ThreadDecl {
                role: "t1",
                multiplicity: Multiplicity::One,
                spawned_by: "ghost-spawner",
                doc: "test",
            }],
            locks: vec![],
            channels: vec![ChannelDecl {
                name: "c",
                senders: vec!["nobody"],
                receiver: "t1",
                bound: Some(4),
                policy: Some(FullPolicy::Block),
                doc: "test",
            }],
            edges: vec![BlockingEdge {
                thread: "phantom",
                waits: WaitPoint::LockAcquire("missing-lock"),
                holding: vec![],
                timed: false,
            }],
        };
        let mut report = LintReport::default();
        lint_conc_coverage(&model, &mut report);
        let msgs: Vec<&str> = report.findings.iter().map(|f| f.message.as_str()).collect();
        assert!(report.findings.iter().all(|f| f.code == "conc-coverage"));
        assert!(msgs.iter().any(|m| m.contains("ghost-spawner")), "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("nobody")), "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("phantom")), "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("missing-lock")), "{msgs:?}");
    }

    #[test]
    fn stale_blocking_edge_on_shed_channel_is_a_warning() {
        let model = ConcModel {
            component: "warn",
            threads: vec![thread("t1"), thread("t2")],
            locks: vec![],
            channels: vec![ChannelDecl {
                name: "c",
                senders: vec!["t1"],
                receiver: "t2",
                bound: Some(4),
                policy: Some(FullPolicy::Shed),
                doc: "test",
            }],
            edges: vec![BlockingEdge {
                thread: "t1",
                waits: WaitPoint::ChanSend("c"),
                holding: vec![],
                timed: false,
            }],
        };
        let mut report = LintReport::default();
        lint_conc_coverage(&model, &mut report);
        assert!(
            report.violations().next().is_none(),
            "{:?}",
            report.findings
        );
        assert!(report
            .warnings()
            .any(|f| f.code == "conc-coverage" && f.message.contains("stale edge")));
    }

    #[test]
    fn untimed_downward_ctrl_write_reintroduces_the_shard_cycle() {
        // Documents WHY the shard's downward control writes are staged and
        // POLLOUT-gated (a *timed* edge): `node.main` already blocks
        // untimed writing status/reports up to its shard. If the shard
        // also blocked untimed writing control lines down to a node —
        // e.g. a naive `write_all` of `peers`/`stop` while that node is
        // itself stuck pushing status into a full pipe — both sides wait
        // for buffer space on the same socketpair and the control tree
        // wedges. The lint must refuse that flip: both waits are
        // full-polarity on one resource, so the full+empty prune cannot
        // discard the cycle.
        let mut model = ssmfp_cluster::conc::default_model();
        let edge = model
            .edges
            .iter_mut()
            .find(|e| e.thread == "shard.super" && e.waits == WaitPoint::SockWrite("node.main"))
            .expect("shard.super declares its downward ctrl write");
        assert!(edge.timed, "shipped model gates this write with POLLOUT");
        edge.timed = false;
        let mut report = LintReport::default();
        lint_conc_deadlock(&model, &mut report);
        assert!(
            report.violations().any(|f| {
                f.code == "conc-deadlock"
                    && f.message.contains("circular wait")
                    && f.message.contains("shard.super")
                    && f.message.contains("node.main")
            }),
            "{:?}",
            report.findings
        );
    }

    #[test]
    fn stale_pr7_names_fail_conc_coverage() {
        // The single-thread refactor deleted the `node.io` role and the
        // `node.ioq` channel (with four other roles and channels). An edge
        // that still references either must be a coverage violation —
        // i.e., the names are really gone from the shipped model, and a
        // half-reverted declaration cannot sneak through the lint gate.
        let model = ssmfp_cluster::conc::default_model();
        assert!(model.thread("node.io").is_none(), "node.io role lives on");
        assert!(model.channel("node.ioq").is_none(), "node.ioq lives on");

        let mut stale = model.clone();
        stale.edges.push(BlockingEdge {
            thread: "node.io",
            waits: WaitPoint::SockRead("node.main"),
            holding: vec![],
            timed: true,
        });
        stale.edges.push(BlockingEdge {
            thread: "node.main",
            waits: WaitPoint::ChanSend("node.ioq"),
            holding: vec![],
            timed: false,
        });
        let mut report = LintReport::default();
        lint_conc_coverage(&stale, &mut report);
        let msgs: Vec<&str> = report.violations().map(|f| f.message.as_str()).collect();
        assert!(
            msgs.iter().any(|m| m.contains("node.io")),
            "stale role not caught: {msgs:?}"
        );
        assert!(
            msgs.iter().any(|m| m.contains("node.ioq")),
            "stale channel not caught: {msgs:?}"
        );
    }

    #[test]
    fn undeclared_client_mux_channel_fails_conc_coverage() {
        // The client layer's design claim: `ClientMux` lives *inside*
        // `node.main` — no new threads, locks, or channels. If a future
        // refactor gave it a queue (say a `client.mux` channel feeding
        // sessions from another thread) without declaring it, the edge
        // must fail conc-coverage rather than ship silently.
        let model = ssmfp_cluster::conc::default_model();
        assert!(
            model.channel("client.mux").is_none(),
            "the mux is declared queue-free; a client.mux channel would be a new design"
        );
        let mut stale = model.clone();
        stale.edges.push(BlockingEdge {
            thread: "node.main",
            waits: WaitPoint::ChanSend("client.mux"),
            holding: vec![],
            timed: false,
        });
        let mut report = LintReport::default();
        lint_conc_coverage(&stale, &mut report);
        assert!(
            report.violations().any(|f| f.code == "conc-coverage"
                && f.message.contains("client.mux")
                && f.message.contains("undeclared channel")),
            "{:?}",
            report.findings
        );
    }
}
