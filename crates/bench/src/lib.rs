//! Criterion benchmarks for the SSMFP reproduction (see `benches/`).
