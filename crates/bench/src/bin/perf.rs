//! `perf` — machine-readable performance harness.
//!
//! Measures the two hot paths this workspace optimises and emits
//! `BENCH_check.json` (explorer throughput: states/sec sequential and
//! parallel, parallel speedup, report-identity cross-check) and
//! `BENCH_engine.json` (engine throughput: steps/sec under full-refresh
//! guard evaluation vs footprint-driven incremental evaluation) into the
//! current directory. JSON is hand-rolled — numbers and booleans only, no
//! string escapes needed beyond the fixed instance names.
//!
//! Usage: `perf [--quick] [--threads N] [--out-dir DIR]`
//!
//! * `--quick` — CI-sized instances (a few seconds total).
//! * `--threads N` — worker threads for the parallel explorer runs
//!   (default: available parallelism).
//! * `--out-dir DIR` — where to write the JSON files (default: `.`).

use ssmfp_check::Explorer;
use ssmfp_core::state::{NodeState, Outgoing};
use ssmfp_core::{GhostId, SsmfpProtocol};
use ssmfp_kernel::{CentralRandomDaemon, Engine, StepOutcome};
use ssmfp_routing::{corruption, CorruptionKind};
use ssmfp_topology::{gen, Graph, NodeId};
use std::fmt::Write as _;
use std::time::Instant;

struct Options {
    quick: bool,
    threads: usize,
    out_dir: String,
}

fn parse_args() -> Options {
    let mut opts = Options {
        quick: false,
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        out_dir: ".".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--threads" => {
                opts.threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&t| t >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("perf: --threads needs a positive integer");
                        std::process::exit(2);
                    });
            }
            "--out-dir" => {
                opts.out_dir = args.next().unwrap_or_else(|| {
                    eprintln!("perf: --out-dir needs a value");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                println!("usage: perf [--quick] [--threads N] [--out-dir DIR]");
                std::process::exit(0);
            }
            other => {
                eprintln!("perf: unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    opts
}

fn clean_states(graph: &Graph) -> Vec<NodeState> {
    corruption::corrupt(graph, CorruptionKind::None, 0)
        .into_iter()
        .map(|r| NodeState::clean(graph.n(), r))
        .collect()
}

fn enqueue(states: &mut [NodeState], src: NodeId, dst: NodeId, payload: u64, seq: u64) {
    states[src].outbox.push_back(Outgoing {
        dest: dst,
        payload,
        ghost: GhostId::Valid(seq),
    });
    states[src].request = true;
}

/// One explorer instance: name, graph, initial states, expectations.
struct CheckInstance {
    name: &'static str,
    graph: Graph,
    states: Vec<NodeState>,
    expectations: Vec<(GhostId, NodeId)>,
}

/// The benchmark instances. `ring-4, 2 far-apart messages` is the small
/// regression point; the 4-message corrupted ring and the caterpillar are
/// the throughput instances (≈10⁴–10⁶ states).
fn check_instances(quick: bool) -> Vec<CheckInstance> {
    let mut out = Vec::new();

    let graph = gen::ring(4);
    let mut states = clean_states(&graph);
    enqueue(&mut states, 0, 1, 1, 0);
    enqueue(&mut states, 2, 3, 2, 1);
    out.push(CheckInstance {
        name: "ring-4, 2 far-apart messages",
        graph,
        states,
        expectations: vec![(GhostId::Valid(0), 1), (GhostId::Valid(1), 3)],
    });

    let graph = gen::ring(4);
    let mut states = clean_states(&graph);
    let msgs = [(0usize, 2usize), (2, 0), (1, 3), (3, 1)];
    let mut expectations = Vec::new();
    for (i, &(src, dst)) in msgs.iter().enumerate() {
        enqueue(&mut states, src, dst, i as u64 + 1, i as u64);
        expectations.push((GhostId::Valid(i as u64), dst));
    }
    states[1].routing.parent[3] = 2;
    states[1].routing.dist[3] = 3;
    out.push(CheckInstance {
        name: "ring-4, 4 crossing messages, corrupted table",
        graph,
        states,
        expectations,
    });

    let graph = gen::caterpillar(3, 1);
    let mut states = clean_states(&graph);
    let msgs: &[(usize, usize)] = if quick {
        &[(3, 5), (5, 3)]
    } else {
        &[(3, 5), (5, 3), (0, 2)]
    };
    let mut expectations = Vec::new();
    for (i, &(src, dst)) in msgs.iter().enumerate() {
        enqueue(&mut states, src, dst, i as u64 + 1, i as u64);
        expectations.push((GhostId::Valid(i as u64), dst));
    }
    out.push(CheckInstance {
        name: "caterpillar(3,1), leg-to-leg messages",
        graph,
        states,
        expectations,
    });

    out
}

fn bench_check(opts: &Options, json: &mut String) {
    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"bench\": \"check\",").unwrap();
    writeln!(
        json,
        "  \"mode\": \"{}\",",
        if opts.quick { "quick" } else { "full" }
    )
    .unwrap();
    writeln!(json, "  \"threads\": {},", opts.threads).unwrap();
    writeln!(json, "  \"available_parallelism\": {avail},").unwrap();
    writeln!(json, "  \"instances\": [").unwrap();

    let instances = check_instances(opts.quick);
    let max_states = if opts.quick { 200_000 } else { 2_000_000 };
    let last = instances.len() - 1;
    for (i, inst) in instances.into_iter().enumerate() {
        let proto = SsmfpProtocol::new(inst.graph.n(), inst.graph.max_degree());

        let mut seq = Explorer::new(inst.graph.clone(), proto.clone(), inst.expectations.clone());
        seq.max_states = max_states;
        let t0 = Instant::now();
        let seq_report = seq.explore(inst.states.clone());
        let seq_secs = t0.elapsed().as_secs_f64().max(1e-9);

        let mut par = Explorer::new(inst.graph.clone(), proto, inst.expectations.clone())
            .with_threads(opts.threads);
        par.max_states = max_states;
        let t0 = Instant::now();
        let par_report = par.explore(inst.states.clone());
        let par_secs = t0.elapsed().as_secs_f64().max(1e-9);
        let identical = par_report == seq_report;

        eprintln!(
            "check | {:<44} | {:>8} states | seq {:>9.0} st/s | par(x{}) {:>9.0} st/s | speedup {:.2}x | identical: {identical}",
            inst.name,
            seq_report.states,
            seq_report.states as f64 / seq_secs,
            opts.threads,
            par_report.states as f64 / par_secs,
            seq_secs / par_secs,
        );
        writeln!(json, "    {{").unwrap();
        writeln!(json, "      \"name\": \"{}\",", inst.name).unwrap();
        writeln!(json, "      \"states\": {},", seq_report.states).unwrap();
        writeln!(json, "      \"verified\": {},", seq_report.verified()).unwrap();
        writeln!(
            json,
            "      \"sequential\": {{ \"secs\": {seq_secs:.6}, \"states_per_sec\": {:.1} }},",
            seq_report.states as f64 / seq_secs
        )
        .unwrap();
        writeln!(
            json,
            "      \"parallel\": {{ \"threads\": {}, \"secs\": {par_secs:.6}, \"states_per_sec\": {:.1}, \"speedup\": {:.3}, \"report_identical\": {identical} }}",
            opts.threads,
            par_report.states as f64 / par_secs,
            seq_secs / par_secs
        )
        .unwrap();
        writeln!(json, "    }}{}", if i == last { "" } else { "," }).unwrap();

        if !identical {
            eprintln!("perf: PARALLEL REPORT DIVERGED on {}", inst.name);
            std::process::exit(1);
        }
    }
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();
}

/// One engine instance: name, graph, traffic pattern (messages enqueued up
/// front so the run is dominated by forwarding moves).
fn engine_instance(
    name: &'static str,
    graph: Graph,
    msgs_per_node: u64,
) -> (&'static str, Graph, Vec<NodeState>) {
    let n = graph.n();
    let mut states = clean_states(&graph);
    let mut seq = 0;
    for p in 0..n {
        for k in 0..msgs_per_node {
            let dst = (p + n / 2 + k as usize % (n - 1)) % n;
            if dst != p {
                enqueue(&mut states, p, dst, seq + 1, seq);
                seq += 1;
            }
        }
    }
    (name, graph, states)
}

/// Runs `steps` engine steps (or to terminal) and returns (steps, secs).
fn drive(graph: &Graph, states: &[NodeState], full_refresh: bool, steps: u64) -> (u64, f64) {
    let proto = SsmfpProtocol::new(graph.n(), graph.max_degree());
    let mut eng = Engine::new(
        graph.clone(),
        proto,
        Box::new(CentralRandomDaemon::new(0xC0FFEE)),
        states.to_vec(),
    );
    eng.set_full_refresh(full_refresh);
    let t0 = Instant::now();
    let mut done = 0;
    while done < steps {
        if matches!(eng.step(), StepOutcome::Terminal) {
            // All traffic delivered: restart the same workload so the
            // timed region actually fills the step budget. The restart
            // recomputes every guard in both modes (equal cost).
            eng.reset_configuration(states.to_vec());
            continue;
        }
        done += 1;
    }
    (done, t0.elapsed().as_secs_f64().max(1e-9))
}

fn bench_engine(opts: &Options, json: &mut String) {
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"bench\": \"engine\",").unwrap();
    writeln!(
        json,
        "  \"mode\": \"{}\",",
        if opts.quick { "quick" } else { "full" }
    )
    .unwrap();
    writeln!(json, "  \"instances\": [").unwrap();

    let steps: u64 = if opts.quick { 4_000 } else { 40_000 };
    let instances = vec![
        engine_instance("ring-8, 2 msgs/node", gen::ring(8), 2),
        engine_instance("ring-16, 2 msgs/node", gen::ring(16), 2),
        engine_instance("caterpillar(6,2), 2 msgs/node", gen::caterpillar(6, 2), 2),
        engine_instance("star-12, 2 msgs/node", gen::star(12), 2),
    ];
    let last = instances.len() - 1;
    for (i, (name, graph, states)) in instances.into_iter().enumerate() {
        // Warm-up pass, then one timed pass per mode (identical seeds, so
        // both modes execute the identical schedule).
        drive(&graph, &states, true, steps.min(500));
        let (full_steps, full_secs) = drive(&graph, &states, true, steps);
        drive(&graph, &states, false, steps.min(500));
        let (inc_steps, inc_secs) = drive(&graph, &states, false, steps);
        assert_eq!(full_steps, inc_steps, "modes must run the same schedule");

        let full_sps = full_steps as f64 / full_secs;
        let inc_sps = inc_steps as f64 / inc_secs;
        eprintln!(
            "engine | {:<32} | {:>6} steps | full {:>9.0} st/s | incremental {:>9.0} st/s | speedup {:.2}x",
            name, full_steps, full_sps, inc_sps, inc_sps / full_sps
        );
        writeln!(json, "    {{").unwrap();
        writeln!(json, "      \"name\": \"{name}\",").unwrap();
        writeln!(json, "      \"n\": {},", graph.n()).unwrap();
        writeln!(json, "      \"steps\": {full_steps},").unwrap();
        writeln!(
            json,
            "      \"full_refresh\": {{ \"secs\": {full_secs:.6}, \"steps_per_sec\": {full_sps:.1} }},"
        )
        .unwrap();
        writeln!(
            json,
            "      \"incremental\": {{ \"secs\": {inc_secs:.6}, \"steps_per_sec\": {inc_sps:.1} }},"
        )
        .unwrap();
        writeln!(json, "      \"speedup\": {:.3}", inc_sps / full_sps).unwrap();
        writeln!(json, "    }}{}", if i == last { "" } else { "," }).unwrap();
    }
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();
}

fn main() {
    let opts = parse_args();
    let mut check_json = String::new();
    bench_check(&opts, &mut check_json);
    let mut engine_json = String::new();
    bench_engine(&opts, &mut engine_json);

    let check_path = format!("{}/BENCH_check.json", opts.out_dir);
    let engine_path = format!("{}/BENCH_engine.json", opts.out_dir);
    std::fs::write(&check_path, check_json).expect("write BENCH_check.json");
    std::fs::write(&engine_path, engine_json).expect("write BENCH_engine.json");
    eprintln!("wrote {check_path} and {engine_path}");
}
