//! `perf` — machine-readable performance harness.
//!
//! Measures the hot paths this workspace optimises and emits
//! `BENCH_check.json` (explorer throughput: states/sec sequential and
//! parallel, parallel speedup, packed bytes/state and compression vs raw
//! storage, report-identity cross-check), `BENCH_engine.json` (engine
//! throughput: steps/sec under full-refresh guard evaluation vs
//! footprint-driven incremental evaluation), and `BENCH_state.json`
//! (codec microbench: pack/unpack ns per node, packed vs deep bytes per
//! configuration, roundtrip check) into the current directory. JSON is
//! hand-rolled — numbers and booleans only, no string escapes needed
//! beyond the fixed instance names.
//!
//! It also emits `BENCH_cluster.json` (socket-cluster end-to-end
//! throughput and one-way latency quantiles: line-5 and caterpillar(3,2)
//! topologies, closed- and open-loop workloads over Unix-domain sockets)
//! and `BENCH_scale.json` (the same end-to-end pipeline on 25-, 64- and
//! 100-node grids with a sharded orchestrator: throughput and latency
//! versus node count), plus `BENCH_clients.json` (the multiplexed client
//! layer: 10k/100k — full mode: 1M — logical clients fanned into the
//! 25-node grid, stamped end-to-end, per-client round-trip quantiles;
//! the 10k point is held to the grid-5x5 per-node throughput measured in
//! the same run).
//!
//! Usage: `perf [--quick] [--threads N] [--out-dir DIR] [--baseline DIR]`
//!
//! * `--quick` — CI-sized instances (a few seconds total).
//! * `--threads N` — worker threads for the parallel explorer runs
//!   (default: available parallelism).
//! * `--out-dir DIR` — where to write the JSON files (default: `.`).
//! * `--baseline DIR` — compare this run's throughput against the
//!   `BENCH_*.json` files in DIR; exit nonzero if any matching metric
//!   regressed by more than 25%.

use ssmfp_check::Explorer;
use ssmfp_core::state::{NodeState, Outgoing};
use ssmfp_core::{
    deep_node_bytes, GhostId, MessageTable, Network, NetworkConfig, SsmfpProtocol, StateCodec,
};
use ssmfp_kernel::{CentralRandomDaemon, Engine, StepOutcome};
use ssmfp_routing::{corruption, CorruptionKind};
use ssmfp_topology::{gen, Graph, NodeId};
use std::fmt::Write as _;
use std::time::Instant;

/// A regression fails the run when a throughput metric drops below this
/// fraction of its baseline value (>25% regression).
const BASELINE_FLOOR: f64 = 0.75;

/// Repeats `run` (which returns `(work units, secs)` for one repetition)
/// until the accumulated time reaches `min_secs` — always at least once —
/// and returns the totals. Small instances finish in microseconds; without
/// accumulation the 25% baseline gate would be pure timing noise.
fn timed_reps(min_secs: f64, mut run: impl FnMut() -> (u64, f64)) -> (u64, f64) {
    let (mut units, mut secs) = (0u64, 0f64);
    loop {
        let (u, s) = run();
        units += u;
        secs += s;
        if secs >= min_secs {
            return (units, secs.max(1e-9));
        }
    }
}

struct Options {
    quick: bool,
    threads: usize,
    out_dir: String,
    baseline: Option<String>,
}

fn parse_args() -> Options {
    let mut opts = Options {
        quick: false,
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        out_dir: ".".to_string(),
        baseline: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--threads" => {
                opts.threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&t| t >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("perf: --threads needs a positive integer");
                        std::process::exit(2);
                    });
            }
            "--out-dir" => {
                opts.out_dir = args.next().unwrap_or_else(|| {
                    eprintln!("perf: --out-dir needs a value");
                    std::process::exit(2);
                });
            }
            "--baseline" => {
                opts.baseline = Some(args.next().unwrap_or_else(|| {
                    eprintln!("perf: --baseline needs a directory");
                    std::process::exit(2);
                }));
            }
            "--version" => {
                println!("perf {}", env!("CARGO_PKG_VERSION"));
                std::process::exit(0);
            }
            "--help" | "-h" => {
                println!("usage: perf [--quick] [--threads N] [--out-dir DIR] [--baseline DIR]");
                std::process::exit(0);
            }
            other => {
                eprintln!("perf: unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    opts
}

fn clean_states(graph: &Graph) -> Vec<NodeState> {
    corruption::corrupt(graph, CorruptionKind::None, 0)
        .into_iter()
        .map(|r| NodeState::clean(graph.n(), r))
        .collect()
}

fn enqueue(states: &mut [NodeState], src: NodeId, dst: NodeId, payload: u64, seq: u64) {
    states[src].outbox.push_back(Outgoing {
        dest: dst,
        payload,
        ghost: GhostId::Valid(seq),
    });
    states[src].request = true;
}

/// One explorer instance: name, graph, initial states, expectations.
struct CheckInstance {
    name: &'static str,
    graph: Graph,
    states: Vec<NodeState>,
    expectations: Vec<(GhostId, NodeId)>,
}

/// The benchmark instances. `ring-4, 2 far-apart messages` is the small
/// regression point; the 4-message corrupted ring and the caterpillar are
/// the throughput instances (≈10⁴–10⁶ states).
fn check_instances(quick: bool) -> Vec<CheckInstance> {
    let mut out = Vec::new();

    let graph = gen::ring(4);
    let mut states = clean_states(&graph);
    enqueue(&mut states, 0, 1, 1, 0);
    enqueue(&mut states, 2, 3, 2, 1);
    out.push(CheckInstance {
        name: "ring-4, 2 far-apart messages",
        graph,
        states,
        expectations: vec![(GhostId::Valid(0), 1), (GhostId::Valid(1), 3)],
    });

    let graph = gen::ring(4);
    let mut states = clean_states(&graph);
    let msgs = [(0usize, 2usize), (2, 0), (1, 3), (3, 1)];
    let mut expectations = Vec::new();
    for (i, &(src, dst)) in msgs.iter().enumerate() {
        enqueue(&mut states, src, dst, i as u64 + 1, i as u64);
        expectations.push((GhostId::Valid(i as u64), dst));
    }
    states[1].routing.parent[3] = 2;
    states[1].routing.dist[3] = 3;
    out.push(CheckInstance {
        name: "ring-4, 4 crossing messages, corrupted table",
        graph,
        states,
        expectations,
    });

    let graph = gen::caterpillar(3, 1);
    let mut states = clean_states(&graph);
    let msgs: &[(usize, usize)] = if quick {
        &[(3, 5), (5, 3)]
    } else {
        &[(3, 5), (5, 3), (0, 2)]
    };
    let mut expectations = Vec::new();
    for (i, &(src, dst)) in msgs.iter().enumerate() {
        enqueue(&mut states, src, dst, i as u64 + 1, i as u64);
        expectations.push((GhostId::Valid(i as u64), dst));
    }
    out.push(CheckInstance {
        name: "caterpillar(3,1), leg-to-leg messages",
        graph,
        states,
        expectations,
    });

    out
}

fn bench_check(opts: &Options, json: &mut String) {
    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"bench\": \"check\",").unwrap();
    writeln!(
        json,
        "  \"mode\": \"{}\",",
        if opts.quick { "quick" } else { "full" }
    )
    .unwrap();
    writeln!(json, "  \"threads\": {},", opts.threads).unwrap();
    writeln!(json, "  \"available_parallelism\": {avail},").unwrap();
    writeln!(json, "  \"instances\": [").unwrap();

    let instances = check_instances(opts.quick);
    let max_states = if opts.quick { 200_000 } else { 2_000_000 };
    let min_secs = if opts.quick { 0.05 } else { 0.2 };
    let last = instances.len() - 1;
    for (i, inst) in instances.into_iter().enumerate() {
        let proto = SsmfpProtocol::new(inst.graph.n(), inst.graph.max_degree());
        let fresh = |threads: usize, packed: bool| {
            let mut e = Explorer::new(inst.graph.clone(), proto.clone(), inst.expectations.clone())
                .with_threads(threads)
                .with_packed(packed);
            e.max_states = max_states;
            e
        };

        // Untimed reference runs: reports for the identity cross-check,
        // stats for the storage figures. The raw (unpacked) run supplies
        // the compression denominator.
        let (seq_report, seq_stats) = fresh(1, true).explore_with_stats(inst.states.clone());
        let (raw_report, raw_stats) = fresh(1, false).explore_with_stats(inst.states.clone());
        let par_report = fresh(opts.threads, true).explore(inst.states.clone());
        let identical = par_report == seq_report && raw_report == seq_report;

        let (seq_states, seq_secs) = timed_reps(min_secs, || {
            let t0 = Instant::now();
            let r = fresh(1, true).explore(inst.states.clone());
            (r.states, t0.elapsed().as_secs_f64())
        });
        let (par_states, par_secs) = timed_reps(min_secs, || {
            let t0 = Instant::now();
            let r = fresh(opts.threads, true).explore(inst.states.clone());
            (r.states, t0.elapsed().as_secs_f64())
        });

        let seq_sps = seq_states as f64 / seq_secs;
        let par_sps = par_states as f64 / par_secs;
        let bps = seq_stats.bytes_per_state();
        let compression = raw_stats.bytes_per_state() / bps.max(1e-9);
        eprintln!(
            "check | {:<44} | {:>8} states | seq {:>9.0} st/s | par(x{}) {:>9.0} st/s | speedup {:.2}x | {:>6.1} B/st ({:.1}x) | identical: {identical}",
            inst.name,
            seq_report.states,
            seq_sps,
            opts.threads,
            par_sps,
            par_sps / seq_sps,
            bps,
            compression,
        );
        writeln!(json, "    {{").unwrap();
        writeln!(json, "      \"name\": \"{}\",", inst.name).unwrap();
        writeln!(json, "      \"states\": {},", seq_report.states).unwrap();
        writeln!(json, "      \"verified\": {},", seq_report.verified()).unwrap();
        writeln!(
            json,
            "      \"sequential\": {{ \"secs\": {seq_secs:.6}, \"states_per_sec\": {seq_sps:.1} }},",
        )
        .unwrap();
        writeln!(
            json,
            "      \"storage\": {{ \"bytes_per_state\": {bps:.1}, \"raw_bytes_per_state\": {:.1}, \"compression\": {compression:.2}, \"interned_messages\": {}, \"interned_nodes\": {} }},",
            raw_stats.bytes_per_state(),
            seq_stats.interned_messages,
            seq_stats.interned_nodes,
        )
        .unwrap();
        writeln!(
            json,
            "      \"parallel\": {{ \"threads\": {}, \"secs\": {par_secs:.6}, \"states_per_sec\": {par_sps:.1}, \"speedup\": {:.3}, \"report_identical\": {identical} }}",
            opts.threads,
            par_sps / seq_sps,
        )
        .unwrap();
        writeln!(json, "    }}{}", if i == last { "" } else { "," }).unwrap();

        if !identical {
            eprintln!("perf: PARALLEL/RAW REPORT DIVERGED on {}", inst.name);
            std::process::exit(1);
        }
    }
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();
}

/// One engine instance: name, graph, traffic pattern (messages enqueued up
/// front so the run is dominated by forwarding moves).
fn engine_instance(
    name: &'static str,
    graph: Graph,
    msgs_per_node: u64,
) -> (&'static str, Graph, Vec<NodeState>) {
    let n = graph.n();
    let mut states = clean_states(&graph);
    let mut seq = 0;
    for p in 0..n {
        for k in 0..msgs_per_node {
            let dst = (p + n / 2 + k as usize % (n - 1)) % n;
            if dst != p {
                enqueue(&mut states, p, dst, seq + 1, seq);
                seq += 1;
            }
        }
    }
    (name, graph, states)
}

/// Runs `steps` engine steps (or to terminal) and returns (steps, secs).
fn drive(graph: &Graph, states: &[NodeState], full_refresh: bool, steps: u64) -> (u64, f64) {
    let proto = SsmfpProtocol::new(graph.n(), graph.max_degree());
    let mut eng = Engine::new(
        graph.clone(),
        proto,
        Box::new(CentralRandomDaemon::new(0xC0FFEE)),
        states.to_vec(),
    );
    eng.set_full_refresh(full_refresh);
    let t0 = Instant::now();
    let mut done = 0;
    while done < steps {
        if matches!(eng.step(), StepOutcome::Terminal) {
            // All traffic delivered: restart the same workload so the
            // timed region actually fills the step budget. The restart
            // recomputes every guard in both modes (equal cost).
            eng.reset_configuration(states.to_vec());
            continue;
        }
        done += 1;
    }
    (done, t0.elapsed().as_secs_f64().max(1e-9))
}

fn bench_engine(opts: &Options, json: &mut String) {
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"bench\": \"engine\",").unwrap();
    writeln!(
        json,
        "  \"mode\": \"{}\",",
        if opts.quick { "quick" } else { "full" }
    )
    .unwrap();
    writeln!(json, "  \"instances\": [").unwrap();

    let steps: u64 = if opts.quick { 4_000 } else { 40_000 };
    let min_secs = if opts.quick { 0.05 } else { 0.2 };
    let instances = vec![
        engine_instance("ring-8, 2 msgs/node", gen::ring(8), 2),
        engine_instance("ring-16, 2 msgs/node", gen::ring(16), 2),
        engine_instance("caterpillar(6,2), 2 msgs/node", gen::caterpillar(6, 2), 2),
        engine_instance("star-12, 2 msgs/node", gen::star(12), 2),
    ];
    let last = instances.len() - 1;
    for (i, (name, graph, states)) in instances.into_iter().enumerate() {
        // Warm-up pass, then accumulated timed passes per mode (identical
        // seeds, so both modes execute the identical schedule).
        drive(&graph, &states, true, steps.min(500));
        let (full_steps, full_secs) = timed_reps(min_secs, || drive(&graph, &states, true, steps));
        drive(&graph, &states, false, steps.min(500));
        let (inc_steps, inc_secs) = timed_reps(min_secs, || drive(&graph, &states, false, steps));

        let full_sps = full_steps as f64 / full_secs;
        let inc_sps = inc_steps as f64 / inc_secs;
        eprintln!(
            "engine | {:<32} | {:>6} steps | full {:>9.0} st/s | incremental {:>9.0} st/s | speedup {:.2}x",
            name, full_steps, full_sps, inc_sps, inc_sps / full_sps
        );
        writeln!(json, "    {{").unwrap();
        writeln!(json, "      \"name\": \"{name}\",").unwrap();
        writeln!(json, "      \"n\": {},", graph.n()).unwrap();
        writeln!(json, "      \"steps\": {full_steps},").unwrap();
        writeln!(
            json,
            "      \"full_refresh\": {{ \"secs\": {full_secs:.6}, \"steps_per_sec\": {full_sps:.1} }},"
        )
        .unwrap();
        writeln!(
            json,
            "      \"incremental\": {{ \"secs\": {inc_secs:.6}, \"steps_per_sec\": {inc_sps:.1} }},"
        )
        .unwrap();
        writeln!(json, "      \"speedup\": {:.3}", inc_sps / full_sps).unwrap();
        writeln!(json, "    }}{}", if i == last { "" } else { "," }).unwrap();
    }
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();
}

/// Builds a loaded network configuration for the codec microbench: live
/// traffic pumped `warm_steps` times on top of adversarial garbage, so the
/// packed words cover occupied forwarding slots, dirty routing tables and
/// in-flight ghosts — the mix the checker actually stores.
fn state_instance(
    name: &'static str,
    graph: Graph,
    warm_steps: u64,
) -> (&'static str, Vec<NodeState>) {
    let n = graph.n();
    let mut net = Network::new(graph, NetworkConfig::adversarial(0xBEEF));
    for s in 0..n {
        net.send(s, (s + n / 2) % n, s as u64 % 8);
    }
    for _ in 0..warm_steps {
        if let StepOutcome::Terminal = net.pump() {
            break;
        }
    }
    (name, net.states().to_vec())
}

fn bench_state(opts: &Options, json: &mut String) {
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"bench\": \"state\",").unwrap();
    writeln!(
        json,
        "  \"mode\": \"{}\",",
        if opts.quick { "quick" } else { "full" }
    )
    .unwrap();
    writeln!(json, "  \"instances\": [").unwrap();

    let batch: u64 = 1_000;
    let min_secs = if opts.quick { 0.05 } else { 0.2 };
    let instances = vec![
        state_instance("ring-8, loaded", gen::ring(8), 200),
        state_instance("caterpillar(6,2), loaded", gen::caterpillar(6, 2), 400),
        state_instance("star-12, loaded", gen::star(12), 300),
    ];
    let last = instances.len() - 1;
    for (i, (name, states)) in instances.into_iter().enumerate() {
        let n = states.len();
        let codec = StateCodec::new(n);
        let mut table = MessageTable::new();
        let mut words = Vec::new();
        // Warm pass: populate the intern table so the timed loops measure
        // steady-state throughput (hits, not first-encounter inserts).
        codec.pack_config(&states, &mut table, &mut words);

        let (pack_nodes, pack_secs) = timed_reps(min_secs, || {
            let t0 = Instant::now();
            for _ in 0..batch {
                words.clear();
                codec.pack_config(&states, &mut table, &mut words);
            }
            (batch * n as u64, t0.elapsed().as_secs_f64())
        });
        let pack_ns = pack_secs * 1e9 / pack_nodes as f64;

        let mut restored = Vec::new();
        let (unpack_nodes, unpack_secs) = timed_reps(min_secs, || {
            let t0 = Instant::now();
            for _ in 0..batch {
                restored = codec.unpack_config(&words, &table);
            }
            (batch * n as u64, t0.elapsed().as_secs_f64())
        });
        let unpack_ns = unpack_secs * 1e9 / unpack_nodes as f64;

        let roundtrip = restored == states;
        // Marginal cost of storing one more configuration: the flat words.
        // The intern table is a shared, amortized cost (reported apart) —
        // the checker pays it once across all stored states.
        let words_bytes = words.len() * std::mem::size_of::<u32>();
        let table_bytes = table.memory_bytes();
        let deep_bytes: usize = states.iter().map(deep_node_bytes).sum();
        let compression = deep_bytes as f64 / words_bytes.max(1) as f64;
        let nodes_per_sec = 1e9 / pack_ns.max(1e-9);

        eprintln!(
            "state | {:<32} | pack {:>7.1} ns/node | unpack {:>7.1} ns/node | {:>6} B packed vs {:>6} B deep ({:.1}x, +{} B table) | roundtrip: {roundtrip}",
            name, pack_ns, unpack_ns, words_bytes, deep_bytes, compression, table_bytes
        );
        writeln!(json, "    {{").unwrap();
        writeln!(json, "      \"name\": \"{name}\",").unwrap();
        writeln!(json, "      \"n\": {n},").unwrap();
        writeln!(json, "      \"pack_ns_per_node\": {pack_ns:.1},").unwrap();
        writeln!(json, "      \"unpack_ns_per_node\": {unpack_ns:.1},").unwrap();
        writeln!(json, "      \"nodes_per_sec\": {nodes_per_sec:.1},").unwrap();
        writeln!(json, "      \"packed_words_bytes\": {words_bytes},").unwrap();
        writeln!(json, "      \"table_bytes\": {table_bytes},").unwrap();
        writeln!(json, "      \"deep_bytes\": {deep_bytes},").unwrap();
        writeln!(json, "      \"compression\": {compression:.2},").unwrap();
        writeln!(json, "      \"interned_messages\": {},", table.len()).unwrap();
        writeln!(json, "      \"roundtrip\": {roundtrip}").unwrap();
        writeln!(json, "    }}{}", if i == last { "" } else { "," }).unwrap();

        if !roundtrip {
            eprintln!("perf: CODEC ROUNDTRIP DIVERGED on {name}");
            std::process::exit(1);
        }
    }
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();
}

/// One end-to-end cluster run over real Unix-domain sockets (in-process
/// node threads, no chaos — this measures the transport and protocol hot
/// path, not fault recovery). Returns `(primaries, secs, report)`.
fn cluster_run(
    topology: &str,
    graph: Graph,
    kind: ssmfp_cluster::WorkloadKind,
    messages: u64,
    shards: usize,
    dir: &std::path::Path,
) -> ssmfp_cluster::RunReport {
    let spec = ssmfp_cluster::ClusterSpec {
        topology: topology.to_string(),
        graph,
        seed: 0xBE_BC,
        workload: ssmfp_cluster::WorkloadSpec { kind, messages },
        chaos: ssmfp_cluster::ChaosSpec::none(),
        listen: ssmfp_cluster::ListenSpec::Uds {
            dir: dir.to_path_buf(),
        },
        clients: None,
        shards,
        mode: ssmfp_cluster::RunMode::Inproc,
        timeout: std::time::Duration::from_secs(180),
    };
    ssmfp_cluster::run_cluster(&spec).unwrap_or_else(|e| {
        eprintln!("perf: cluster run {topology} failed: {e}");
        std::process::exit(1);
    })
}

fn bench_cluster(opts: &Options, json: &mut String) {
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"bench\": \"cluster\",").unwrap();
    writeln!(
        json,
        "  \"mode\": \"{}\",",
        if opts.quick { "quick" } else { "full" }
    )
    .unwrap();
    writeln!(json, "  \"instances\": [").unwrap();

    // Message counts sized so the measured window dominates the fixed
    // convergence-detection tail (stable_snapshots × status_every ≈
    // 75-100ms): the event-driven plane drains the old 30-message quick
    // runs inside that tail, which would make throughput numbers pure
    // detector latency.
    let msgs: u64 = if opts.quick { 1_000 } else { 4_000 };
    // Open-loop rate is *per source node* (line-5 offers 5×, caterpillar
    // 9×). 1000/s/node keeps the offered load at ~0.65-0.85 of measured
    // closed-loop capacity on a single core: open-loop latency then
    // measures the network, not an unbounded app-queue backlog. Rates
    // past capacity drive the offer-backoff into congestion collapse —
    // throughput *drops* and p99 becomes pure queueing delay.
    let open_rate = 1_000.0;
    let topologies = [
        ("line-5", gen::line(5)),
        ("caterpillar(3,2)", gen::caterpillar(3, 2)),
    ];
    let workloads = [
        (
            "closed-4",
            ssmfp_cluster::WorkloadKind::Closed { outstanding: 4 },
        ),
        (
            "open-1000/s",
            ssmfp_cluster::WorkloadKind::Open {
                rate_per_sec: open_rate,
            },
        ),
    ];
    let dir = std::env::temp_dir().join(format!("ssmfp-perf-cluster-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create cluster bench dir");
    let last = topologies.len() * workloads.len() - 1;
    let mut i = 0;
    for (topo_name, graph) in &topologies {
        for (wl_name, kind) in workloads {
            let report = cluster_run(topo_name, graph.clone(), kind, msgs, 1, &dir);
            if !report.clean() {
                eprintln!("perf: CLUSTER RUN NOT CLEAN on {topo_name}/{wl_name}");
                std::process::exit(1);
            }
            let name = format!("{topo_name}, {wl_name}");
            let (p50, p99) = (report.latency.quantile(0.50), report.latency.quantile(0.99));
            let frames_per_write = if report.counters.write_syscalls > 0 {
                report.counters.frames_sent as f64 / report.counters.write_syscalls as f64
            } else {
                0.0
            };
            eprintln!(
                "cluster | {:<28} | {:>5} primaries | {:>8.0} msg/s | p50 {:>7} us | p99 {:>7} us | {:>5.2} frames/write | wall {:.2}s",
                name, report.primaries_delivered, report.throughput, p50, p99, frames_per_write, report.wall_s
            );
            writeln!(json, "    {{").unwrap();
            writeln!(json, "      \"name\": \"{name}\",").unwrap();
            writeln!(json, "      \"n\": {},", report.n).unwrap();
            writeln!(
                json,
                "      \"primaries_delivered\": {},",
                report.primaries_delivered
            )
            .unwrap();
            writeln!(json, "      \"wall_s\": {:.4},", report.wall_s).unwrap();
            writeln!(json, "      \"msgs_per_sec\": {:.1},", report.throughput).unwrap();
            writeln!(json, "      \"p50_us\": {p50},").unwrap();
            writeln!(json, "      \"p99_us\": {p99},").unwrap();
            writeln!(json, "      \"frames_per_write\": {frames_per_write:.2},").unwrap();
            writeln!(json, "      \"clean\": {}", report.clean()).unwrap();
            writeln!(json, "    }}{}", if i == last { "" } else { "," }).unwrap();
            i += 1;
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();
}

/// Scale sweep: closed-loop grid workloads at 25, 64 and 100 nodes over
/// UDS, 4 orchestrator shards, no chaos — measures how end-to-end
/// throughput scales with topology size under the one-thread-per-node
/// data plane and the sharded control plane. The regression gate reads
/// `msgs_per_sec` only; p99 is reported for the record (tail latency on
/// a shared core is too noisy for a 25% floor).
///
/// Returns the measured grid-5x5 `msgs_per_sec`, which the client-layer
/// sweep uses as its same-machine per-node throughput reference.
fn bench_scale(opts: &Options, json: &mut String) -> f64 {
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"bench\": \"scale\",").unwrap();
    writeln!(
        json,
        "  \"mode\": \"{}\",",
        if opts.quick { "quick" } else { "full" }
    )
    .unwrap();
    writeln!(json, "  \"instances\": [").unwrap();

    // Per-node message counts: enough that the drain window dominates the
    // fixed convergence tail even at 25 nodes, small enough that the
    // 100-node quick run stays CI-sized.
    let msgs: u64 = if opts.quick { 30 } else { 200 };
    let shards = 4;
    let grids: [(&str, usize, usize); 3] = [
        ("grid-5x5", 5, 5),
        ("grid-8x8", 8, 8),
        ("grid-10x10", 10, 10),
    ];
    let dir = std::env::temp_dir().join(format!("ssmfp-perf-scale-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scale bench dir");
    let last = grids.len() - 1;
    let mut grid_5x5_mps = 0.0;
    for (i, (name, rows, cols)) in grids.into_iter().enumerate() {
        let graph = gen::grid(rows, cols);
        let kind = ssmfp_cluster::WorkloadKind::Closed { outstanding: 2 };
        let report = cluster_run(name, graph, kind, msgs, shards, &dir);
        if !report.clean() {
            eprintln!("perf: SCALE RUN NOT CLEAN on {name}");
            std::process::exit(1);
        }
        if name == "grid-5x5" {
            grid_5x5_mps = report.throughput;
        }
        let (p50, p99) = (report.latency.quantile(0.50), report.latency.quantile(0.99));
        eprintln!(
            "scale | {:<12} | n={:>3} shards={} | {:>5} primaries | {:>8.0} msg/s | p50 {:>7} us | p99 {:>7} us | wall {:.2}s",
            name, report.n, report.shards, report.primaries_delivered, report.throughput, p50, p99, report.wall_s
        );
        writeln!(json, "    {{").unwrap();
        writeln!(json, "      \"name\": \"{name}\",").unwrap();
        writeln!(json, "      \"n\": {},", report.n).unwrap();
        writeln!(json, "      \"shards\": {},", report.shards).unwrap();
        writeln!(
            json,
            "      \"primaries_delivered\": {},",
            report.primaries_delivered
        )
        .unwrap();
        writeln!(json, "      \"wall_s\": {:.4},", report.wall_s).unwrap();
        writeln!(json, "      \"msgs_per_sec\": {:.1},", report.throughput).unwrap();
        writeln!(json, "      \"p50_us\": {p50},").unwrap();
        writeln!(json, "      \"p99_us\": {p99},").unwrap();
        writeln!(json, "      \"clean\": {}", report.clean()).unwrap();
        writeln!(json, "    }}{}", if i == last { "" } else { "," }).unwrap();
    }
    let _ = std::fs::remove_dir_all(&dir);
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();
    grid_5x5_mps
}

/// Client fan-in sweep: tens of thousands (full mode: a million) of
/// logical clients multiplexed onto the 25-node grid through the
/// per-node `ClientMux`, stop-and-wait per client, every message stamped
/// and audited for per-client exactly-once. No chaos — this measures
/// the fan-in hot path. The regression gate reads `msgs_per_sec`; the
/// 10k instance is additionally held, within the same run, to at least
/// the per-node throughput of the plain grid-5x5 scale workload
/// (`scale_5x5_mps / 25`), so client multiplexing can never quietly
/// drop below what one directly-driven node sustains.
fn bench_clients(opts: &Options, json: &mut String, scale_5x5_mps: f64) {
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"bench\": \"clients\",").unwrap();
    writeln!(
        json,
        "  \"mode\": \"{}\",",
        if opts.quick { "quick" } else { "full" }
    )
    .unwrap();
    writeln!(json, "  \"instances\": [").unwrap();

    // Two stamped messages per client: enough to exercise FIFO-per-client
    // (a second seq after the first ack) without inflating run time at
    // the million-client point.
    let messages = 2u64;
    let shards = 4;
    let counts: &[(&str, u64)] = if opts.quick {
        &[("clients-10k", 10_000), ("clients-100k", 100_000)]
    } else {
        &[
            ("clients-10k", 10_000),
            ("clients-100k", 100_000),
            ("clients-1m", 1_000_000),
        ]
    };
    let dir = std::env::temp_dir().join(format!("ssmfp-perf-clients-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create clients bench dir");
    let last = counts.len() - 1;
    for (i, &(name, clients)) in counts.iter().enumerate() {
        let spec = ssmfp_cluster::ClusterSpec {
            topology: "grid:5x5".to_string(),
            graph: gen::grid(5, 5),
            seed: 0xBE_BC,
            // Inert in client mode; the mux replaces the node workload.
            workload: ssmfp_cluster::WorkloadSpec {
                kind: ssmfp_cluster::WorkloadKind::Closed { outstanding: 2 },
                messages: 0,
            },
            chaos: ssmfp_cluster::ChaosSpec::none(),
            listen: ssmfp_cluster::ListenSpec::Uds {
                dir: dir.to_path_buf(),
            },
            clients: Some(ssmfp_cluster::ClientSpec {
                clients,
                load: ssmfp_cluster::WorkloadSpec {
                    kind: ssmfp_cluster::WorkloadKind::Closed { outstanding: 1 },
                    messages,
                },
                mutation: None,
            }),
            shards,
            mode: ssmfp_cluster::RunMode::Inproc,
            timeout: std::time::Duration::from_secs(600),
        };
        let report = ssmfp_cluster::run_cluster(&spec).unwrap_or_else(|e| {
            eprintln!("perf: client run {name} failed: {e}");
            std::process::exit(1);
        });
        if !report.clean() {
            eprintln!("perf: CLIENT RUN NOT CLEAN on {name}");
            std::process::exit(1);
        }
        let (p50, p99) = (
            report.client_rtt.quantile(0.50),
            report.client_rtt.quantile(0.99),
        );
        eprintln!(
            "clients | {:<12} | {:>8} clients | {:>8} completed | {:>8.0} msg/s | rtt p50 {:>7} us | p99 {:>7} us | wall {:.2}s",
            name, report.clients, report.clients_completed, report.throughput, p50, p99, report.wall_s
        );
        writeln!(json, "    {{").unwrap();
        writeln!(json, "      \"name\": \"{name}\",").unwrap();
        writeln!(json, "      \"n\": {},", report.n).unwrap();
        writeln!(json, "      \"shards\": {},", report.shards).unwrap();
        writeln!(json, "      \"clients\": {},", report.clients).unwrap();
        writeln!(json, "      \"completed\": {},", report.clients_completed).unwrap();
        writeln!(
            json,
            "      \"primaries_delivered\": {},",
            report.primaries_delivered
        )
        .unwrap();
        writeln!(json, "      \"wall_s\": {:.4},", report.wall_s).unwrap();
        writeln!(json, "      \"msgs_per_sec\": {:.1},", report.throughput).unwrap();
        writeln!(json, "      \"rtt_p50_us\": {p50},").unwrap();
        writeln!(json, "      \"rtt_p99_us\": {p99},").unwrap();
        writeln!(json, "      \"clean\": {}", report.clean()).unwrap();
        writeln!(json, "    }}{}", if i == last { "" } else { "," }).unwrap();

        if name == "clients-10k" && scale_5x5_mps > 0.0 {
            let per_node_floor = scale_5x5_mps / 25.0;
            if report.throughput < per_node_floor {
                eprintln!(
                    "perf: CLIENT FAN-IN BELOW PER-NODE BASELINE: {:.0} msg/s < {per_node_floor:.0} msg/s (grid-5x5 {scale_5x5_mps:.0} / 25 nodes)",
                    report.throughput
                );
                std::process::exit(1);
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();
}

/// Extracts `(instance_name, value)` pairs for `key` from one of our
/// hand-rolled `BENCH_*.json` files, in document order. Each `"name"` line
/// updates the current instance; each `"<key>": <number>` occurrence is
/// attributed to it. This is deliberately a line scanner, not a JSON
/// parser — the files are machine-written with a fixed shape.
fn extract_metrics(json: &str, key: &str) -> Vec<(String, f64)> {
    let pat = format!("\"{key}\": ");
    let mut name = String::new();
    let mut out = Vec::new();
    for line in json.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("\"name\": \"") {
            name = rest.trim_end_matches(',').trim_end_matches('"').to_string();
        }
        let mut rest = line;
        while let Some(pos) = rest.find(&pat) {
            rest = &rest[pos + pat.len()..];
            let num: String = rest
                .chars()
                .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
                .collect();
            if let Ok(v) = num.parse::<f64>() {
                out.push((name.clone(), v));
            }
        }
    }
    out
}

/// Compares every throughput metric of `current` against `baseline`
/// (matched by instance name and per-name occurrence order — e.g. the
/// sequential and parallel `states_per_sec` of one check instance).
/// Returns the number of >25% regressions found, printing one line per
/// comparison.
fn compare_file(label: &str, key: &str, baseline: &str, current: &str) -> usize {
    let base = extract_metrics(baseline, key);
    let cur = extract_metrics(current, key);
    let mut regressions = 0;
    let mut seen: Vec<(String, usize)> = Vec::new();
    for (name, base_v) in &base {
        // Occurrence index of this name so far (sequential=0, parallel=1, …).
        let k = match seen.iter_mut().find(|(n, _)| n == name) {
            Some((_, k)) => {
                *k += 1;
                *k
            }
            None => {
                seen.push((name.clone(), 0));
                0
            }
        };
        let cur_v = cur
            .iter()
            .filter(|(n, _)| n == name)
            .nth(k)
            .map(|(_, v)| *v);
        match cur_v {
            Some(v) if *base_v > 0.0 => {
                let ratio = v / base_v;
                let verdict = if ratio < BASELINE_FLOOR {
                    "REGRESSED"
                } else {
                    "ok"
                };
                eprintln!(
                    "baseline | {label:<6} | {name:<44} | {key}[{k}] {base_v:>12.1} -> {v:>12.1} ({:>6.2}x) {verdict}",
                    ratio
                );
                if ratio < BASELINE_FLOOR {
                    regressions += 1;
                }
            }
            _ => {
                eprintln!(
                    "baseline | {label:<6} | {name:<44} | {key}[{k}] missing in current run — skipped"
                );
            }
        }
    }
    regressions
}

/// Checks the freshly-written JSON against the `BENCH_*.json` files in
/// `dir`. Missing baseline files are skipped with a note (so a baseline
/// directory can predate `BENCH_state.json`). Exits nonzero on any >25%
/// throughput regression.
#[allow(clippy::too_many_arguments)]
fn compare_baseline(
    dir: &str,
    check: &str,
    engine: &str,
    state: &str,
    cluster: &str,
    scale: &str,
    clients: &str,
) {
    let mut regressions = 0;
    let files: [(&str, &str, &str, &str); 7] = [
        ("check", "BENCH_check.json", "states_per_sec", check),
        ("engine", "BENCH_engine.json", "steps_per_sec", engine),
        ("state", "BENCH_state.json", "nodes_per_sec", state),
        ("state", "BENCH_state.json", "compression", state),
        ("cluster", "BENCH_cluster.json", "msgs_per_sec", cluster),
        ("scale", "BENCH_scale.json", "msgs_per_sec", scale),
        ("clients", "BENCH_clients.json", "msgs_per_sec", clients),
    ];
    for (label, file, key, current) in files {
        match std::fs::read_to_string(format!("{dir}/{file}")) {
            Ok(baseline) => regressions += compare_file(label, key, &baseline, current),
            Err(_) => eprintln!("baseline | {label:<6} | {dir}/{file} not found — skipped"),
        }
    }
    if regressions > 0 {
        eprintln!("perf: {regressions} metric(s) regressed more than 25% vs baseline {dir}");
        std::process::exit(1);
    }
    eprintln!("baseline | no metric regressed more than 25% vs {dir}");
}

fn main() {
    let opts = parse_args();
    let mut check_json = String::new();
    bench_check(&opts, &mut check_json);
    let mut engine_json = String::new();
    bench_engine(&opts, &mut engine_json);
    let mut state_json = String::new();
    bench_state(&opts, &mut state_json);
    let mut cluster_json = String::new();
    bench_cluster(&opts, &mut cluster_json);
    let mut scale_json = String::new();
    let scale_5x5_mps = bench_scale(&opts, &mut scale_json);
    let mut clients_json = String::new();
    bench_clients(&opts, &mut clients_json, scale_5x5_mps);

    let check_path = format!("{}/BENCH_check.json", opts.out_dir);
    let engine_path = format!("{}/BENCH_engine.json", opts.out_dir);
    let state_path = format!("{}/BENCH_state.json", opts.out_dir);
    let cluster_path = format!("{}/BENCH_cluster.json", opts.out_dir);
    let scale_path = format!("{}/BENCH_scale.json", opts.out_dir);
    let clients_path = format!("{}/BENCH_clients.json", opts.out_dir);
    std::fs::write(&check_path, &check_json).expect("write BENCH_check.json");
    std::fs::write(&engine_path, &engine_json).expect("write BENCH_engine.json");
    std::fs::write(&state_path, &state_json).expect("write BENCH_state.json");
    std::fs::write(&cluster_path, &cluster_json).expect("write BENCH_cluster.json");
    std::fs::write(&scale_path, &scale_json).expect("write BENCH_scale.json");
    std::fs::write(&clients_path, &clients_json).expect("write BENCH_clients.json");
    eprintln!(
        "wrote {check_path}, {engine_path}, {state_path}, {cluster_path}, {scale_path} and {clients_path}"
    );

    if let Some(dir) = &opts.baseline {
        compare_baseline(
            dir,
            &check_json,
            &engine_json,
            &state_json,
            &cluster_json,
            &scale_json,
            &clients_json,
        );
    }
}
