//! **E12 bench** — the state-model engine itself: steps/second under each
//! daemon, routing convergence, and the SSMFP guard-evaluation cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssmfp_core::{Network, NetworkConfig};
use ssmfp_kernel::toys::{RingState, TokenRing};
use ssmfp_kernel::{CentralRandomDaemon, Daemon, Engine, RoundRobinDaemon, SynchronousDaemon};
use ssmfp_routing::{corruption, CorruptionKind, RoutingProtocol, RoutingState};
use ssmfp_topology::gen;
use std::time::Duration;

fn token_ring_steps(n: usize, daemon: Box<dyn Daemon>, steps: u64) -> u64 {
    let g = gen::ring(n);
    let proto = TokenRing::new(n, n as u32 + 1);
    let mut eng = Engine::new(g, proto, daemon, vec![RingState(0); n]);
    eng.run(steps).steps
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for n in [16usize, 64] {
        group.bench_with_input(
            BenchmarkId::new("token_ring_sync_1k_steps", n),
            &n,
            |b, &n| b.iter(|| token_ring_steps(n, Box::new(SynchronousDaemon), 1_000)),
        );
        group.bench_with_input(
            BenchmarkId::new("token_ring_rr_1k_steps", n),
            &n,
            |b, &n| b.iter(|| token_ring_steps(n, Box::new(RoundRobinDaemon::new()), 1_000)),
        );
    }
    for n in [8usize, 16] {
        group.bench_with_input(
            BenchmarkId::new("routing_convergence_from_garbage", n),
            &n,
            |b, &n| {
                b.iter(|| {
                    let g = gen::grid(2, n / 2);
                    let proto: RoutingProtocol<RoutingState> = RoutingProtocol::new(g.n());
                    let states = corruption::corrupt(&g, CorruptionKind::RandomGarbage, 5);
                    let mut eng =
                        Engine::new(g, proto, Box::new(CentralRandomDaemon::new(1)), states);
                    let stats = eng.run(5_000_000);
                    assert!(stats.terminal);
                    stats.steps
                })
            },
        );
    }
    group.bench_function("ssmfp_single_message_line8", |b| {
        b.iter(|| {
            let mut net = Network::new(gen::line(8), NetworkConfig::clean());
            let g = net.send(0, 7, 1);
            net.run_until_delivered(g, 1_000_000).expect("delivered");
            net.steps()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
