//! **E5 / Proposition 4 bench** — draining the extremal all-buffers-full
//! configuration (at most 2n invalid deliveries per destination) as the
//! network scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssmfp_analysis::experiments::prop4::extremal_run;
use ssmfp_routing::CorruptionKind;
use ssmfp_topology::gen;
use std::time::Duration;

fn bench_prop4(c: &mut Criterion) {
    let mut group = c.benchmark_group("prop4_invalid_drain");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for n in [5usize, 8, 11] {
        group.bench_with_input(BenchmarkId::new("ring_garbage_tables", n), &n, |b, &n| {
            b.iter(|| {
                let r = extremal_run(gen::ring(n), CorruptionKind::RandomGarbage, 3);
                assert!(r.quiescent);
                assert!(r.max_per_dest <= r.bound);
                r.total
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_prop4);
criterion_main!(benches);
