//! **Fault-injection bench** — the cost of the transient-fault engine:
//! plan generation, per-fault application through the engine's step hook,
//! full fault-scenario execution with the epoch-scoped oracle, and the
//! replay-artifact codec round-trip.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssmfp_core::faults::{FaultPlan, FaultPlanConfig};
use ssmfp_core::replay::{run_fault_scenario, FaultScenario, SendSpec};
use ssmfp_core::{DaemonKind, Network, NetworkConfig};
use ssmfp_routing::CorruptionKind;
use ssmfp_topology::gen;
use std::time::Duration;

fn scenario(seed: u64, faults: usize) -> FaultScenario {
    let graph = gen::ring(6);
    let n = graph.n();
    let plan = FaultPlan::random(
        &graph,
        FaultPlanConfig {
            faults,
            horizon: 200,
            seed,
        },
    );
    let sends = [0u64, 40, 90, 150, 250]
        .iter()
        .enumerate()
        .map(|(k, &at)| SendSpec {
            at_step: at,
            src: k % n,
            dst: (k + 3) % n,
            payload: k as u64 % 8,
        })
        .collect();
    FaultScenario {
        n,
        edges: graph.edges().to_vec(),
        daemon: DaemonKind::CentralRandom { seed },
        corruption: CorruptionKind::RandomGarbage,
        garbage_fill: 0.4,
        seed,
        bug: None,
        budget: 300_000,
        sends,
        plan,
    }
}

fn bench_fault_injection(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_injection");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));

    let graph = gen::ring(6);
    group.bench_function("plan_random_8_faults", |b| {
        b.iter(|| {
            FaultPlan::random(
                &graph,
                FaultPlanConfig {
                    faults: 8,
                    horizon: 200,
                    seed: 42,
                },
            )
        })
    });

    // Per-fault application cost, isolated from scheduling: force every
    // fault of a plan into a fresh network.
    let plan = FaultPlan::random(
        &graph,
        FaultPlanConfig {
            faults: 8,
            horizon: 200,
            seed: 42,
        },
    );
    group.bench_function("force_8_faults", |b| {
        b.iter(|| {
            let mut net = Network::new(gen::ring(6), NetworkConfig::clean());
            for fault in &plan.faults {
                net.force_fault(fault);
            }
            net.steps()
        })
    });

    for faults in [0usize, 8] {
        group.bench_with_input(
            BenchmarkId::new("scenario_to_quiescence", faults),
            &faults,
            |b, &faults| {
                let s = scenario(11, faults);
                b.iter(|| run_fault_scenario(&s).steps)
            },
        );
    }

    let artifact = scenario(11, 8);
    group.bench_function("artifact_roundtrip", |b| {
        b.iter(|| FaultScenario::from_text(&artifact.to_text()).expect("roundtrip"))
    });

    group.finish();
}

criterion_group!(benches, bench_fault_injection);
criterion_main!(benches);
