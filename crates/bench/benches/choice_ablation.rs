//! **E13 bench** — the §4 future-work ablation: cost of the three
//! `choice_p(d)` selection schemes under hub contention.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssmfp_analysis::experiments::choice_ablation::contention_run;
use ssmfp_core::choice::ChoiceStrategy;
use std::time::Duration;

fn bench_choice(c: &mut Criterion) {
    let mut group = c.benchmark_group("choice_ablation");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for (name, strategy) in [
        ("rotation", ChoiceStrategy::RotationQueue),
        ("longest_waiting", ChoiceStrategy::LongestWaiting),
        ("greedy", ChoiceStrategy::GreedyFirst),
    ] {
        group.bench_with_input(BenchmarkId::new(name, 6), &6, |b, &n| {
            b.iter(|| {
                let r = contention_run(n, 10, strategy, 3);
                assert!(r.exactly_once);
                r.total_rounds
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_choice);
criterion_main!(benches);
