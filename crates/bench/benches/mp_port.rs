//! **E14 bench** — the message-passing port: end-to-end all-pairs runs on
//! the async substrate, clean vs corrupted-with-garbage starts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssmfp_mp::{MpConfig, PortNetwork};
use ssmfp_topology::gen;
use std::time::Duration;

fn run_port(seed: u64, corrupt: bool, wire: usize, buffers: usize) -> u64 {
    let graph = gen::ring(6);
    let n = graph.n();
    let mut net = PortNetwork::new(
        graph,
        MpConfig {
            seed,
            timeout_bias: 0.3,
        },
        corrupt,
        if corrupt { 10 } else { 0 },
        wire,
        buffers,
    );
    let mut ghosts = Vec::new();
    for s in 0..n {
        ghosts.push(net.send(s, (s + 2) % n, s as u64 % 8));
    }
    assert!(net.run_to_quiescence(5_000_000));
    for g in &ghosts {
        assert_eq!(net.deliveries_of(*g), 1);
    }
    net.net().steps()
}

fn bench_mp(c: &mut Criterion) {
    let mut group = c.benchmark_group("mp_port");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.bench_with_input(BenchmarkId::new("clean", 6), &6, |b, _| {
        b.iter(|| run_port(1, false, 0, 0))
    });
    group.bench_with_input(BenchmarkId::new("corrupted_garbage", 6), &6, |b, _| {
        b.iter(|| run_port(1, true, 24, 3))
    });
    group.finish();
}

criterion_group!(benches, bench_mp);
criterion_main!(benches);
