//! **E9/E10 bench** — SSMFP vs the fault-free baseline [21]: all-pairs
//! workload with correct tables (the over-cost claim), and the corrupted-
//! start sweeps of the motivation experiment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssmfp_analysis::experiments::corruption::sweep;
use ssmfp_analysis::experiments::overhead::paired_run;
use ssmfp_core::baseline::BaselineNetwork;
use ssmfp_core::{DaemonKind, Network, NetworkConfig};
use ssmfp_routing::CorruptionKind;
use ssmfp_topology::gen;
use std::time::Duration;

fn all_pairs_ssmfp(n: usize, seed: u64) -> u64 {
    let mut net = Network::new(
        gen::ring(n),
        NetworkConfig::clean().with_daemon(DaemonKind::CentralRandom { seed }),
    );
    for s in 0..n {
        for d in 0..n {
            if s != d {
                net.send(s, d, ((s + d) % 8) as u64);
            }
        }
    }
    assert!(net.run_to_quiescence(100_000_000));
    net.rounds()
}

fn all_pairs_baseline(n: usize, seed: u64) -> u64 {
    let mut net = BaselineNetwork::new(
        gen::ring(n),
        DaemonKind::CentralRandom { seed },
        CorruptionKind::None,
        0.0,
        seed,
    );
    for s in 0..n {
        for d in 0..n {
            if s != d {
                net.send(s, d, ((s + d) % 8) as u64);
            }
        }
    }
    assert!(net.run_to_quiescence(100_000_000));
    net.rounds()
}

fn bench_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("overhead_vs_baseline");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for n in [5usize, 7] {
        group.bench_with_input(BenchmarkId::new("ssmfp_all_pairs", n), &n, |b, &n| {
            b.iter(|| all_pairs_ssmfp(n, 3))
        });
        group.bench_with_input(BenchmarkId::new("baseline_all_pairs", n), &n, |b, &n| {
            b.iter(|| all_pairs_baseline(n, 3))
        });
    }
    group.bench_function("paired_run_ring6", |b| {
        b.iter(|| {
            let r = paired_run(&gen::ring(6), 2);
            assert!(r.ssmfp_rounds_per_delivery > 0.0);
            r.ssmfp_rounds_per_delivery
        })
    });
    group.bench_function("corruption_sweep_ssmfp_3seeds", |b| {
        b.iter(|| {
            let t = sweep(0..3, false);
            assert_eq!(t.exactly_once, t.sent);
            t.sent
        })
    });
    group.bench_function("corruption_sweep_baseline_3seeds", |b| {
        b.iter(|| sweep(0..3, true).sent)
    });
    group.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
