//! **E4 bench** — caterpillar classification throughput (Definition 3 over
//! a fully garbage configuration) and the censused adversarial run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssmfp_core::{classify_buffers, Network, NetworkConfig};
use ssmfp_topology::gen;
use std::time::Duration;

fn bench_classify(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_caterpillar");
    group.sample_size(30);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for n in [6usize, 10, 14] {
        let net = Network::new(
            gen::ring(n),
            NetworkConfig::adversarial(3).with_garbage_fill(1.0),
        );
        let graph = net.graph().clone();
        group.bench_with_input(BenchmarkId::new("classify_full_garbage", n), &n, |b, _| {
            b.iter(|| {
                let census = classify_buffers(&graph, std::hint::black_box(net.states()));
                assert_eq!(census.orphans, 0);
                census
            })
        });
    }
    group.bench_function("censused_adversarial_run_ring6", |b| {
        b.iter(|| {
            let mut net = Network::new(gen::ring(6), NetworkConfig::adversarial(5));
            for s in 0..6 {
                net.send(s, (s + 2) % 6, s as u64);
            }
            let r = ssmfp_analysis::experiments::fig4::censused_run(&mut net, 50_000);
            assert_eq!(r.orphans, 0);
            r.steps
        })
    });
    group.finish();
}

criterion_group!(benches, bench_classify);
criterion_main!(benches);
