//! **E6 / Proposition 5 bench** — diameter-probe delivery on the two
//! scaling families (lines: `D` grows at `Δ = 2`; stars: `Δ` grows at
//! `D = 2`), clean vs corrupted tables.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssmfp_analysis::experiments::prop5::probe_delivery_rounds;
use ssmfp_analysis::workload::{line_family, star_family};
use ssmfp_routing::CorruptionKind;
use std::time::Duration;

fn bench_prop5(c: &mut Criterion) {
    let mut group = c.benchmark_group("prop5_probe_latency");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for t in line_family(&[6, 10])
        .iter()
        .chain(star_family(&[6, 10]).iter())
    {
        for (label, corruption) in [
            ("clean", CorruptionKind::None),
            ("garbage", CorruptionKind::RandomGarbage),
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("{}_{label}", t.name), t.metrics.n()),
                &t.metrics.n(),
                |b, _| b.iter(|| probe_delivery_rounds(t, corruption, 5).expect("delivered")),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_prop5);
criterion_main!(benches);
