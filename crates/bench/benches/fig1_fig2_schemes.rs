//! **E1/E2/E11 bench** — buffer-graph construction and validation cost for
//! the Figure 1, Figure 2 and §4-cover schemes as the network scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssmfp_buffer_graph::{destination_based, ring_cover, tree_cover, two_buffer};
use ssmfp_topology::{gen, BfsTree};
use std::time::Duration;

fn bench_schemes(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_fig2_schemes");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for n in [8usize, 16, 32] {
        let g = gen::ring(n);
        let trees: Vec<BfsTree> = (0..n).map(|d| BfsTree::new(&g, d)).collect();
        group.bench_with_input(BenchmarkId::new("fig1_destination_based", n), &n, |b, _| {
            b.iter(|| {
                let bg = destination_based(std::hint::black_box(&trees));
                assert!(bg.is_acyclic());
                bg
            })
        });
        group.bench_with_input(BenchmarkId::new("fig2_two_buffer", n), &n, |b, _| {
            b.iter(|| {
                let bg = two_buffer(std::hint::black_box(&trees));
                assert!(bg.is_acyclic());
                bg
            })
        });
        group.bench_with_input(BenchmarkId::new("cover_ring", n), &n, |b, _| {
            b.iter(|| {
                let cover = ring_cover(std::hint::black_box(n));
                assert!(cover.covers_all_shortest_paths(&g));
                cover
            })
        });
        let tg = gen::kary_tree(n, 2);
        let troot = BfsTree::new(&tg, 0);
        group.bench_with_input(BenchmarkId::new("cover_tree", n), &n, |b, _| {
            b.iter(|| {
                let cover = tree_cover(std::hint::black_box(&troot));
                assert!(cover.covers_all_shortest_paths(&tg));
                cover
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schemes);
criterion_main!(benches);
