//! **E7 / Proposition 6 bench** — star-contention runs measuring emission
//! delay and inter-emission waiting time at the hub.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssmfp_analysis::experiments::prop6::star_contention_run;
use ssmfp_routing::CorruptionKind;
use std::time::Duration;

fn bench_prop6(c: &mut Criterion) {
    let mut group = c.benchmark_group("prop6_star_contention");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for n in [4usize, 6, 8] {
        for (label, corruption) in [
            ("clean", CorruptionKind::None),
            ("garbage", CorruptionKind::RandomGarbage),
        ] {
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, &n| {
                b.iter(|| {
                    let r = star_contention_run(n, corruption, 7);
                    assert!(r.delay_rounds < 100_000);
                    r.max_waiting_rounds
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_prop6);
criterion_main!(benches);
