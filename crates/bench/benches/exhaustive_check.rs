//! **E16 bench** — exhaustive state-space exploration throughput of the
//! model checker on representative small instances.

use criterion::{criterion_group, criterion_main, Criterion};
use ssmfp_check::Explorer;
use ssmfp_core::state::{NodeState, Outgoing};
use ssmfp_core::{GhostId, SsmfpProtocol};
use ssmfp_routing::{corruption, CorruptionKind};
use ssmfp_topology::gen;
use std::time::Duration;

fn explore_line3_two_messages() -> u64 {
    let graph = gen::line(3);
    let mut states: Vec<NodeState> = corruption::corrupt(&graph, CorruptionKind::None, 0)
        .into_iter()
        .map(|r| NodeState::clean(3, r))
        .collect();
    let a = GhostId::Valid(0);
    let b = GhostId::Valid(1);
    states[0].outbox.push_back(Outgoing {
        dest: 2,
        payload: 3,
        ghost: a,
    });
    states[2].outbox.push_back(Outgoing {
        dest: 0,
        payload: 5,
        ghost: b,
    });
    let explorer = Explorer::new(graph, SsmfpProtocol::new(3, 2), vec![(a, 2), (b, 0)]);
    let report = explorer.explore(states);
    assert!(report.verified());
    report.states
}

fn explore_triangle_garbage() -> u64 {
    use ssmfp_core::message::{Color, Message};
    let graph = gen::ring(3);
    let mut states: Vec<NodeState> = corruption::corrupt(&graph, CorruptionKind::None, 0)
        .into_iter()
        .map(|r| NodeState::clean(3, r))
        .collect();
    states[2].slots[1].buf_r = Some(Message {
        payload: 1,
        last_hop: 2,
        color: Color(1),
        ghost: GhostId::Invalid(0),
    });
    let a = GhostId::Valid(0);
    let b = GhostId::Valid(1);
    states[0].outbox.push_back(Outgoing {
        dest: 1,
        payload: 1,
        ghost: a,
    });
    states[1].outbox.push_back(Outgoing {
        dest: 0,
        payload: 2,
        ghost: b,
    });
    let explorer = Explorer::new(graph, SsmfpProtocol::new(3, 2), vec![(a, 1), (b, 0)]);
    let report = explorer.explore(states);
    assert!(report.verified());
    report.states
}

fn bench_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("exhaustive_check");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.bench_function("line3_two_messages", |b| b.iter(explore_line3_two_messages));
    group.bench_function("triangle_with_garbage", |b| {
        b.iter(explore_triangle_garbage)
    });
    group.finish();
}

criterion_group!(benches, bench_check);
criterion_main!(benches);
