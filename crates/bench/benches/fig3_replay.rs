//! **E3 bench** — full Figure 3 replay to quiescence under the weakly fair
//! and random daemons (end-to-end snap-stabilization on the paper's own
//! example network).

use criterion::{criterion_group, criterion_main, Criterion};
use ssmfp_core::api::DaemonKind;
use ssmfp_core::replay::run_figure3;
use std::time::Duration;

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_replay");
    group.sample_size(30);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.bench_function("round_robin", |b| {
        b.iter(|| {
            let r = run_figure3(DaemonKind::RoundRobin, true, 200_000);
            assert_eq!(r.m_deliveries, 1);
            r
        })
    });
    group.bench_function("central_random", |b| {
        b.iter(|| {
            let r = run_figure3(DaemonKind::CentralRandom { seed: 7 }, true, 400_000);
            assert_eq!(r.m_deliveries, 1);
            r
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
