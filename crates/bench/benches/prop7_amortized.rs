//! **E8 / Proposition 7 bench** — flood-to-one-destination runs: amortized
//! rounds per delivery across the line family, clean vs corrupted tables.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssmfp_analysis::experiments::prop7::flood_run;
use ssmfp_analysis::workload::line_family;
use ssmfp_routing::CorruptionKind;
use std::time::Duration;

fn bench_prop7(c: &mut Criterion) {
    let mut group = c.benchmark_group("prop7_flood");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for t in line_family(&[6, 10, 14]) {
        for (label, corruption) in [
            ("clean", CorruptionKind::None),
            ("garbage", CorruptionKind::RandomGarbage),
        ] {
            group.bench_with_input(
                BenchmarkId::new(label, t.metrics.n()),
                &t.metrics.n(),
                |b, _| {
                    b.iter(|| {
                        let r = flood_run(&t, 2, corruption, 9);
                        assert!(r.delivered > 0);
                        r.rounds
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_prop7);
criterion_main!(benches);
