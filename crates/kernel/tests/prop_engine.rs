//! Property tests for the engine's §2.1 semantics, driven by the toy
//! protocols: composite-atomic writes, round monotonicity, daemon
//! contracts, and convergence invariance across daemons.

use proptest::prelude::*;
use ssmfp_kernel::toys::{MaxProtocol, MaxState, RingState, TokenRing};
use ssmfp_kernel::{
    CentralRandomDaemon, Daemon, DistributedRandomDaemon, Engine, LocallyCentralDaemon,
    RoundRobinDaemon, StepOutcome, SynchronousDaemon,
};
use ssmfp_topology::gen;

fn daemons(seed: u64, graph: &ssmfp_topology::Graph) -> Vec<Box<dyn Daemon>> {
    vec![
        Box::new(SynchronousDaemon),
        Box::new(RoundRobinDaemon::new()),
        Box::new(CentralRandomDaemon::new(seed)),
        Box::new(DistributedRandomDaemon::new(seed, 0.5)),
        Box::new(LocallyCentralDaemon::from_graph(seed, graph)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Max-propagation converges to the same fixpoint (the global max)
    /// under every daemon, from any initial values — daemon choice affects
    /// schedules, never outcomes of a confluent protocol.
    #[test]
    fn max_protocol_confluent_across_daemons(
        values in proptest::collection::vec(0u64..100, 2..20),
        seed in any::<u64>(),
    ) {
        let n = values.len();
        let graph = gen::line(n);
        let expected = *values.iter().max().expect("non-empty");
        for daemon in daemons(seed, &graph) {
            let states: Vec<MaxState> = values.iter().map(|&v| MaxState(v)).collect();
            let mut eng = Engine::new(graph.clone(), MaxProtocol, daemon, states);
            let stats = eng.run(1_000_000);
            prop_assert!(stats.terminal);
            prop_assert!(eng.states().iter().all(|s| s.0 == expected));
        }
    }

    /// Rounds never exceed steps, and under the synchronous daemon every
    /// step is exactly one round.
    #[test]
    fn rounds_bounded_by_steps(
        values in proptest::collection::vec(0u64..50, 2..15),
        seed in any::<u64>(),
    ) {
        let n = values.len();
        let graph = gen::ring(n.max(3));
        let states: Vec<MaxState> = (0..graph.n())
            .map(|i| MaxState(values[i % n]))
            .collect();
        let mut eng = Engine::new(
            graph.clone(),
            MaxProtocol,
            Box::new(CentralRandomDaemon::new(seed)),
            states.clone(),
        );
        eng.run(10_000);
        prop_assert!(eng.rounds() <= eng.steps());

        let mut sync = Engine::new(graph, MaxProtocol, Box::new(SynchronousDaemon), states);
        sync.run(10_000);
        prop_assert_eq!(sync.rounds(), sync.steps());
    }

    /// Dijkstra's token ring stabilizes to a single circulating privilege
    /// under every fair daemon from any initial state.
    #[test]
    fn token_ring_stabilizes_under_every_daemon(
        states in proptest::collection::vec(0u32..6, 3..8),
        seed in any::<u64>(),
    ) {
        let n = states.len();
        let graph = gen::ring(n);
        let k = n as u32 + 1;
        let tokens = |ss: &[RingState]| -> usize {
            (0..n)
                .filter(|&p| {
                    let pred = ss[(p + n - 1) % n].0;
                    if p == 0 { ss[p].0 == pred } else { ss[p].0 != pred }
                })
                .count()
        };
        for daemon in daemons(seed, &graph) {
            let init: Vec<RingState> = states.iter().map(|&v| RingState(v % k)).collect();
            let mut eng = Engine::new(graph.clone(), TokenRing::new(n, k), daemon, init);
            eng.run(20_000);
            // After the generous budget: exactly one privilege, forever.
            for _ in 0..50 {
                prop_assert_eq!(tokens(eng.states()), 1);
                eng.step();
            }
        }
    }

    /// Trace records match the engine's own counters.
    #[test]
    fn trace_is_consistent_with_counters(
        values in proptest::collection::vec(0u64..50, 3..12),
        seed in any::<u64>(),
    ) {
        let n = values.len();
        let graph = gen::line(n);
        let states: Vec<MaxState> = values.iter().map(|&v| MaxState(v)).collect();
        let mut eng = Engine::new(
            graph,
            MaxProtocol,
            Box::new(DistributedRandomDaemon::new(seed, 0.7)),
            states,
        );
        eng.enable_trace();
        eng.run(5_000);
        let trace = eng.trace().expect("enabled");
        prop_assert_eq!(trace.len() as u64, eng.steps());
        for rec in trace {
            prop_assert!(!rec.moves.is_empty(), "every step moves someone");
            prop_assert!(rec.round <= eng.rounds());
        }
    }
}

/// Composite atomicity: under the synchronous daemon all writes of a step
/// are based on the pre-step configuration. For max-propagation on a line
/// seeded at one end, the wavefront therefore advances exactly one node
/// per step — a distinguishing check against read-your-neighbour's-new-
/// value semantics, which would jump further.
#[test]
fn composite_atomicity_wavefront() {
    let n = 8;
    let graph = gen::line(n);
    let mut states = vec![MaxState(0); n];
    states[0] = MaxState(9);
    let mut eng = Engine::new(graph, MaxProtocol, Box::new(SynchronousDaemon), states);
    for step in 1..n {
        eng.step();
        for (p, s) in eng.states().iter().enumerate() {
            let expected = if p <= step { 9 } else { 0 };
            assert_eq!(s.0, expected, "step {step}, node {p}");
        }
    }
}

/// StepOutcome::Terminal exactly coincides with no enabled processors.
#[test]
fn terminal_reporting_is_exact() {
    let graph = gen::line(4);
    let mut eng = Engine::new(
        graph,
        MaxProtocol,
        Box::new(RoundRobinDaemon::new()),
        vec![MaxState(3); 4],
    );
    assert_eq!(eng.enabled_processors().count(), 0);
    assert_eq!(eng.step(), StepOutcome::Terminal);
    eng.mutate_state(2, |s| s.0 = 7);
    assert_eq!(eng.enabled_processors().collect::<Vec<_>>(), vec![1, 3]);
    assert!(matches!(eng.step(), StepOutcome::Progress { .. }));
}
