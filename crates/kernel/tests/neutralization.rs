//! Tests for the *neutralization* clause of the §2.1 round definition: a
//! processor enabled at a round's start that becomes disabled by someone
//! else's move — without executing — is discharged from the round exactly
//! like one that acted.

use ssmfp_kernel::{CentralRandomDaemon, Engine, Protocol, RoundRobinDaemon, View};
use ssmfp_topology::gen;

/// A rendezvous toy: a processor is enabled iff both it and some neighbour
/// `want`; acting clears its own `want`. When two neighbours both want,
/// either's move *neutralizes* the other.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Want(bool);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Withdraw;

struct Rendezvous;

impl Protocol for Rendezvous {
    type State = Want;
    type Action = Withdraw;
    type Event = ();

    fn enabled_actions(&self, view: &View<'_, Want>, out: &mut Vec<Withdraw>) {
        if view.me().0 && view.neighbors().iter().any(|&q| view.state(q).0) {
            out.push(Withdraw);
        }
    }

    fn execute(&self, _view: &View<'_, Want>, _action: Withdraw, _events: &mut Vec<()>) -> Want {
        Want(false)
    }
}

#[test]
fn neutralized_processor_completes_the_round() {
    // Two nodes, both wanting: both enabled. One acts; the other is
    // neutralized in the same step. The §2.1 round must therefore complete
    // after that single step — not wait for the second processor to move
    // (it never will).
    let g = gen::line(2);
    let mut eng = Engine::new(
        g,
        Rendezvous,
        Box::new(RoundRobinDaemon::new()),
        vec![Want(true), Want(true)],
    );
    assert_eq!(eng.enabled_processors().collect::<Vec<_>>(), vec![0, 1]);
    let stats = eng.run(10);
    assert!(stats.terminal);
    assert_eq!(eng.steps(), 1, "one withdrawal suffices");
    assert_eq!(
        eng.rounds(),
        1,
        "the neutralized peer must not hold the round open"
    );
    assert_eq!(eng.states(), &[Want(false), Want(true)]);
}

#[test]
fn chain_of_neutralizations() {
    // A line of 4 all wanting. Each move can neutralize its neighbours;
    // the engine must terminate with no enabled processors and the round
    // accounting must never exceed the step count.
    for seed in 0..10 {
        let g = gen::line(4);
        let mut eng = Engine::new(
            g,
            Rendezvous,
            Box::new(CentralRandomDaemon::new(seed)),
            vec![Want(true); 4],
        );
        let stats = eng.run(100);
        assert!(stats.terminal, "seed {seed}");
        assert!(eng.rounds() <= eng.steps(), "seed {seed}");
        // Terminal: no two adjacent wanting processors remain.
        let w: Vec<bool> = eng.states().iter().map(|s| s.0).collect();
        for i in 0..3 {
            assert!(!(w[i] && w[i + 1]), "seed {seed}: adjacent wants remain");
        }
    }
}

#[test]
fn reenabled_mid_round_processor_does_not_rejoin_round() {
    // Engine contract (documented on mutate_state): a processor enabled by
    // an external mutation mid-round was not enabled at the round's start,
    // so the current round can complete without it.
    let g = gen::line(2);
    let mut eng = Engine::new(
        g,
        Rendezvous,
        Box::new(RoundRobinDaemon::new()),
        vec![Want(true), Want(true)],
    );
    eng.run(10);
    let r0 = eng.rounds();
    // Re-arm both externally; a fresh round begins with them.
    eng.mutate_state(0, |s| s.0 = true);
    eng.mutate_state(1, |s| s.0 = true);
    let stats = eng.run(10);
    assert!(stats.terminal);
    assert!(eng.rounds() > r0);
}
