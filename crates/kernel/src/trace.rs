//! Trace analysis: post-hoc statistics over recorded executions.
//!
//! The engine's optional trace records every move `(step, round, processor,
//! action)`. This module turns a trace into the aggregates the experiments
//! report: per-processor activity, per-round move counts, concurrency
//! profile, and daemon-fairness diagnostics (longest starvation gap).

use crate::engine::StepRecord;

/// Aggregated statistics of one recorded execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStats {
    /// Total steps recorded.
    pub steps: u64,
    /// Total individual moves (≥ steps; > under distributed daemons).
    pub moves: u64,
    /// Moves per processor.
    pub moves_per_processor: Vec<u64>,
    /// Maximum number of processors moving in a single step.
    pub max_concurrency: usize,
    /// For each processor, the longest run of steps between two of its
    /// moves (∞-like `u64::MAX` if it never moved) — a fairness diagnostic.
    pub longest_gap: Vec<u64>,
}

impl TraceStats {
    /// Computes statistics over a trace for a network of `n` processors.
    pub fn from_trace<A>(trace: &[StepRecord<A>], n: usize) -> Self {
        let mut moves_per_processor = vec![0u64; n];
        let mut last_move = vec![None::<u64>; n];
        let mut longest_gap = vec![0u64; n];
        let mut moves = 0u64;
        let mut max_concurrency = 0usize;
        for rec in trace {
            max_concurrency = max_concurrency.max(rec.moves.len());
            for &(p, _) in &rec.moves {
                moves += 1;
                moves_per_processor[p] += 1;
                if let Some(prev) = last_move[p] {
                    longest_gap[p] = longest_gap[p].max(rec.step - prev);
                }
                last_move[p] = Some(rec.step);
            }
        }
        let steps = trace.len() as u64;
        for p in 0..n {
            if last_move[p].is_none() {
                longest_gap[p] = u64::MAX;
            } else if let Some(prev) = last_move[p] {
                // Tail gap: from the last move to the end of the trace.
                longest_gap[p] = longest_gap[p].max(steps.saturating_sub(prev + 1));
            }
        }
        TraceStats {
            steps,
            moves,
            moves_per_processor,
            max_concurrency,
            longest_gap,
        }
    }

    /// Jain's fairness index over per-processor move counts (1.0 = all
    /// processors moved equally; → 1/n as one processor dominates).
    pub fn fairness_index(&self) -> f64 {
        let n = self.moves_per_processor.len() as f64;
        let sum: f64 = self.moves_per_processor.iter().map(|&x| x as f64).sum();
        let sum_sq: f64 = self
            .moves_per_processor
            .iter()
            .map(|&x| (x as f64) * (x as f64))
            .sum();
        if sum_sq == 0.0 {
            return 1.0;
        }
        sum * sum / (n * sum_sq)
    }
}

/// Counts, for each distinct action value, how many times it fired.
pub fn action_histogram<A: Copy + Eq + std::hash::Hash>(
    trace: &[StepRecord<A>],
) -> std::collections::HashMap<A, u64> {
    let mut hist = std::collections::HashMap::new();
    for rec in trace {
        for &(_, a) in &rec.moves {
            *hist.entry(a).or_insert(0) += 1;
        }
    }
    hist
}

/// Moves per round (the granularity the paper's bounds are stated in).
pub fn moves_per_round<A>(trace: &[StepRecord<A>]) -> Vec<u64> {
    let mut per_round: Vec<u64> = Vec::new();
    for rec in trace {
        let r = rec.round as usize;
        if per_round.len() <= r {
            per_round.resize(r + 1, 0);
        }
        per_round[r] += rec.moves.len() as u64;
    }
    per_round
}

#[cfg(test)]
mod tests {
    use super::*;

    use ssmfp_topology::NodeId;

    fn rec(step: u64, round: u64, moves: Vec<(NodeId, u8)>) -> StepRecord<u8> {
        StepRecord { step, round, moves }
    }

    #[test]
    fn counts_moves_and_concurrency() {
        let trace = vec![
            rec(0, 0, vec![(0, 1), (2, 1)]),
            rec(1, 0, vec![(1, 2)]),
            rec(2, 1, vec![(0, 1)]),
        ];
        let s = TraceStats::from_trace(&trace, 3);
        assert_eq!(s.steps, 3);
        assert_eq!(s.moves, 4);
        assert_eq!(s.moves_per_processor, vec![2, 1, 1]);
        assert_eq!(s.max_concurrency, 2);
    }

    #[test]
    fn gaps_track_starvation() {
        let trace = vec![
            rec(0, 0, vec![(0, 1)]),
            rec(1, 0, vec![(0, 1)]),
            rec(2, 0, vec![(0, 1)]),
            rec(3, 0, vec![(1, 1)]),
        ];
        let s = TraceStats::from_trace(&trace, 3);
        assert_eq!(s.longest_gap[0], 1); // tail gap: last move at step 2, trace len 4
        assert_eq!(s.longest_gap[1], 0);
        assert_eq!(s.longest_gap[2], u64::MAX); // never moved
    }

    #[test]
    fn fairness_index_extremes() {
        let balanced = TraceStats {
            steps: 4,
            moves: 4,
            moves_per_processor: vec![1, 1, 1, 1],
            max_concurrency: 1,
            longest_gap: vec![0; 4],
        };
        assert!((balanced.fairness_index() - 1.0).abs() < 1e-9);
        let skewed = TraceStats {
            steps: 4,
            moves: 4,
            moves_per_processor: vec![4, 0, 0, 0],
            max_concurrency: 1,
            longest_gap: vec![0; 4],
        };
        assert!((skewed.fairness_index() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn histogram_and_rounds() {
        let trace = vec![rec(0, 0, vec![(0, 7), (1, 7)]), rec(1, 1, vec![(2, 9)])];
        let h = action_histogram(&trace);
        assert_eq!(h[&7], 2);
        assert_eq!(h[&9], 1);
        assert_eq!(moves_per_round(&trace), vec![2, 1]);
    }
}
