//! Daemons: the adversarial schedulers of §2.1.
//!
//! A daemon observes which processors are enabled and chooses, at each step,
//! a non-empty subset to execute (and, for each chosen processor, which of
//! its enabled actions runs). The paper's hierarchy is covered:
//!
//! * [`SynchronousDaemon`] — every enabled processor moves every step (the
//!   strongest *distributed* daemon; trivially weakly fair).
//! * [`RoundRobinDaemon`] — central (one processor per step), **weakly
//!   fair**: a continuously enabled processor is eventually chosen. This is
//!   the daemon the paper's proofs assume.
//! * [`CentralRandomDaemon`] — central, uniformly random; strongly fair with
//!   probability 1.
//! * [`DistributedRandomDaemon`] — every enabled processor tosses a coin;
//!   at least one always moves.
//! * [`AdversarialDaemon`] — **unfair**: starves a configurable victim set,
//!   scheduling a victim only when no one else is enabled (the weakest
//!   scheduling assumption of §2.1). Used for stress experiments.
//!
//! Every stochastic daemon is seeded and fully deterministic given its seed.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use ssmfp_topology::NodeId;

/// A daemon's choice for one step: pairs of (processor, index into that
/// processor's enabled-action list as returned by the protocol, i.e. index 0
/// is the protocol's highest-priority enabled action).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Selection {
    /// Chosen processors with the index of the action each executes.
    pub choices: Vec<(NodeId, usize)>,
}

/// The daemon abstraction: phase (ii) of the atomic step.
pub trait Daemon {
    /// Chooses a non-empty subset of `enabled` (pairs of processor id and
    /// its number of enabled actions, `≥ 1`). Implementations must return at
    /// least one choice whenever `enabled` is non-empty, and action indices
    /// must be in range.
    fn select(&mut self, enabled: &[(NodeId, usize)]) -> Selection;

    /// Name for traces and reports.
    fn name(&self) -> &'static str;
}

/// Executes every enabled processor each step, running each one's
/// highest-priority enabled action.
#[derive(Debug, Default, Clone)]
pub struct SynchronousDaemon;

impl Daemon for SynchronousDaemon {
    fn select(&mut self, enabled: &[(NodeId, usize)]) -> Selection {
        Selection {
            choices: enabled.iter().map(|&(p, _)| (p, 0)).collect(),
        }
    }

    fn name(&self) -> &'static str {
        "synchronous"
    }
}

/// Central weakly-fair daemon: cycles a pointer over processor identities and
/// picks the first enabled processor at or after it. A continuously enabled
/// processor is chosen after at most `n − 1` other selections.
#[derive(Debug, Clone)]
pub struct RoundRobinDaemon {
    next: NodeId,
}

impl RoundRobinDaemon {
    /// Starts the rotation at processor 0.
    pub fn new() -> Self {
        RoundRobinDaemon { next: 0 }
    }
}

impl Default for RoundRobinDaemon {
    fn default() -> Self {
        Self::new()
    }
}

impl Daemon for RoundRobinDaemon {
    fn select(&mut self, enabled: &[(NodeId, usize)]) -> Selection {
        assert!(
            !enabled.is_empty(),
            "daemon invoked with no enabled processor"
        );
        // `enabled` is sorted by processor id (engine invariant); find the
        // first entry >= self.next, wrapping around.
        let idx = enabled
            .iter()
            .position(|&(p, _)| p >= self.next)
            .unwrap_or(0);
        let (p, _) = enabled[idx];
        self.next = p + 1;
        Selection {
            choices: vec![(p, 0)],
        }
    }

    fn name(&self) -> &'static str {
        "round-robin (weakly fair, central)"
    }
}

/// Central daemon choosing one enabled processor uniformly at random, and
/// optionally a uniformly random enabled action instead of the
/// highest-priority one.
#[derive(Debug, Clone)]
pub struct CentralRandomDaemon {
    rng: ChaCha8Rng,
    random_action: bool,
}

impl CentralRandomDaemon {
    /// Seeded daemon running highest-priority actions.
    pub fn new(seed: u64) -> Self {
        CentralRandomDaemon {
            rng: ChaCha8Rng::seed_from_u64(seed),
            random_action: false,
        }
    }

    /// Also randomize which enabled action runs (exercises the full
    /// nondeterminism of the model; only meaningful for protocols without an
    /// internal priority requirement).
    pub fn with_random_action(seed: u64) -> Self {
        CentralRandomDaemon {
            rng: ChaCha8Rng::seed_from_u64(seed),
            random_action: true,
        }
    }
}

impl Daemon for CentralRandomDaemon {
    fn select(&mut self, enabled: &[(NodeId, usize)]) -> Selection {
        assert!(
            !enabled.is_empty(),
            "daemon invoked with no enabled processor"
        );
        let (p, k) = enabled[self.rng.gen_range(0..enabled.len())];
        let a = if self.random_action {
            self.rng.gen_range(0..k)
        } else {
            0
        };
        Selection {
            choices: vec![(p, a)],
        }
    }

    fn name(&self) -> &'static str {
        "central random"
    }
}

/// Distributed daemon: each enabled processor is selected with probability
/// `p_move`; if the coin flips exclude everyone, one enabled processor is
/// chosen uniformly (the model requires a non-empty selection).
#[derive(Debug, Clone)]
pub struct DistributedRandomDaemon {
    rng: ChaCha8Rng,
    p_move: f64,
}

impl DistributedRandomDaemon {
    /// Seeded daemon with inclusion probability `p_move ∈ (0, 1]`.
    pub fn new(seed: u64, p_move: f64) -> Self {
        assert!(p_move > 0.0 && p_move <= 1.0, "p_move must be in (0, 1]");
        DistributedRandomDaemon {
            rng: ChaCha8Rng::seed_from_u64(seed),
            p_move,
        }
    }
}

impl Daemon for DistributedRandomDaemon {
    fn select(&mut self, enabled: &[(NodeId, usize)]) -> Selection {
        assert!(
            !enabled.is_empty(),
            "daemon invoked with no enabled processor"
        );
        let mut choices: Vec<(NodeId, usize)> = enabled
            .iter()
            .filter(|_| self.rng.gen_bool(self.p_move))
            .map(|&(p, _)| (p, 0))
            .collect();
        if choices.is_empty() {
            let (p, _) = enabled[self.rng.gen_range(0..enabled.len())];
            choices.push((p, 0));
        }
        Selection { choices }
    }

    fn name(&self) -> &'static str {
        "distributed random"
    }
}

/// Locally central daemon: selects a maximal set of enabled processors no
/// two of which are neighbours (a greedy maximal independent set over the
/// enabled processors, randomized). The classical intermediate between the
/// central and fully distributed daemons: concurrent, but no two adjacent
/// processors ever execute in the same step — useful for protocols whose
/// proofs assume reads and writes of neighbours never race.
#[derive(Debug, Clone)]
pub struct LocallyCentralDaemon {
    rng: ChaCha8Rng,
    /// Adjacency oracle supplied at construction (the daemon must know the
    /// topology to avoid selecting neighbours).
    adjacency: Vec<Vec<NodeId>>,
}

impl LocallyCentralDaemon {
    /// Creates the daemon from the network's adjacency lists.
    pub fn new(seed: u64, adjacency: Vec<Vec<NodeId>>) -> Self {
        LocallyCentralDaemon {
            rng: ChaCha8Rng::seed_from_u64(seed),
            adjacency,
        }
    }

    /// Convenience constructor from a graph.
    pub fn from_graph(seed: u64, graph: &ssmfp_topology::Graph) -> Self {
        let adjacency = graph.nodes().map(|p| graph.neighbors(p).to_vec()).collect();
        Self::new(seed, adjacency)
    }
}

impl Daemon for LocallyCentralDaemon {
    fn select(&mut self, enabled: &[(NodeId, usize)]) -> Selection {
        assert!(
            !enabled.is_empty(),
            "daemon invoked with no enabled processor"
        );
        // Greedy MIS over the enabled set in a random order.
        let mut order: Vec<usize> = (0..enabled.len()).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, self.rng.gen_range(0..=i));
        }
        let mut blocked = vec![false; self.adjacency.len()];
        let mut choices = Vec::new();
        for idx in order {
            let (p, _) = enabled[idx];
            if blocked[p] {
                continue;
            }
            choices.push((p, 0));
            for &q in &self.adjacency[p] {
                blocked[q] = true;
            }
        }
        debug_assert!(!choices.is_empty());
        choices.sort_unstable();
        Selection { choices }
    }

    fn name(&self) -> &'static str {
        "locally central"
    }
}

/// Unfair central daemon: never schedules a processor in `victims` while any
/// other processor is enabled — the §2.1 *unfair* daemon, which "can forever
/// prevent a processor to execute an action except if it is the only enabled
/// processor". Among non-victims it chooses uniformly at random.
#[derive(Debug, Clone)]
pub struct AdversarialDaemon {
    rng: ChaCha8Rng,
    victims: Vec<NodeId>,
    random_action: bool,
}

impl AdversarialDaemon {
    /// Creates an unfair daemon starving `victims`.
    pub fn new(seed: u64, victims: Vec<NodeId>) -> Self {
        AdversarialDaemon {
            rng: ChaCha8Rng::seed_from_u64(seed),
            victims,
            random_action: false,
        }
    }

    /// As [`AdversarialDaemon::new`], but also picks a uniformly random
    /// enabled action instead of the highest-priority one — the fully
    /// nondeterministic adversary of the model.
    pub fn with_random_action(seed: u64, victims: Vec<NodeId>) -> Self {
        AdversarialDaemon {
            rng: ChaCha8Rng::seed_from_u64(seed),
            victims,
            random_action: true,
        }
    }

    /// The starved processor set.
    pub fn victims(&self) -> &[NodeId] {
        &self.victims
    }
}

impl Daemon for AdversarialDaemon {
    fn select(&mut self, enabled: &[(NodeId, usize)]) -> Selection {
        assert!(
            !enabled.is_empty(),
            "daemon invoked with no enabled processor"
        );
        let non_victims: Vec<&(NodeId, usize)> = enabled
            .iter()
            .filter(|(p, _)| !self.victims.contains(p))
            .collect();
        let (p, k) = if non_victims.is_empty() {
            enabled[self.rng.gen_range(0..enabled.len())]
        } else {
            *non_victims[self.rng.gen_range(0..non_victims.len())]
        };
        let a = if self.random_action {
            self.rng.gen_range(0..k)
        } else {
            0
        };
        Selection {
            choices: vec![(p, a)],
        }
    }

    fn name(&self) -> &'static str {
        "adversarial unfair"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synchronous_selects_everyone() {
        let mut d = SynchronousDaemon;
        let sel = d.select(&[(0, 1), (2, 3), (5, 2)]);
        assert_eq!(sel.choices, vec![(0, 0), (2, 0), (5, 0)]);
    }

    #[test]
    fn round_robin_cycles() {
        let mut d = RoundRobinDaemon::new();
        let enabled = [(1, 1), (3, 1), (4, 1)];
        assert_eq!(d.select(&enabled).choices, vec![(1, 0)]);
        assert_eq!(d.select(&enabled).choices, vec![(3, 0)]);
        assert_eq!(d.select(&enabled).choices, vec![(4, 0)]);
        assert_eq!(d.select(&enabled).choices, vec![(1, 0)]); // wraps
    }

    #[test]
    fn round_robin_is_weakly_fair() {
        // A continuously enabled processor must be selected within n picks.
        let mut d = RoundRobinDaemon::new();
        let enabled: Vec<(NodeId, usize)> = (0..10).map(|p| (p, 1)).collect();
        let mut seen = [false; 10];
        for _ in 0..10 {
            let sel = d.select(&enabled);
            seen[sel.choices[0].0] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn central_random_is_deterministic_per_seed() {
        let enabled: Vec<(NodeId, usize)> = (0..50).map(|p| (p, 2)).collect();
        let mut d1 = CentralRandomDaemon::new(9);
        let mut d2 = CentralRandomDaemon::new(9);
        for _ in 0..100 {
            assert_eq!(d1.select(&enabled), d2.select(&enabled));
        }
    }

    #[test]
    fn central_random_picks_single_valid() {
        let mut d = CentralRandomDaemon::with_random_action(3);
        let enabled = [(7, 4)];
        for _ in 0..50 {
            let sel = d.select(&enabled);
            assert_eq!(sel.choices.len(), 1);
            let (p, a) = sel.choices[0];
            assert_eq!(p, 7);
            assert!(a < 4);
        }
    }

    #[test]
    fn distributed_random_never_empty() {
        let mut d = DistributedRandomDaemon::new(1, 0.01);
        let enabled: Vec<(NodeId, usize)> = (0..5).map(|p| (p, 1)).collect();
        for _ in 0..200 {
            assert!(!d.select(&enabled).choices.is_empty());
        }
    }

    #[test]
    fn locally_central_never_selects_neighbors() {
        let g = ssmfp_topology::gen::ring(8);
        let mut d = LocallyCentralDaemon::from_graph(3, &g);
        let enabled: Vec<(NodeId, usize)> = (0..8).map(|p| (p, 1)).collect();
        for _ in 0..100 {
            let sel = d.select(&enabled);
            assert!(!sel.choices.is_empty());
            for &(p, _) in &sel.choices {
                for &(q, _) in &sel.choices {
                    assert!(p == q || !g.has_edge(p, q), "{p} and {q} are neighbours");
                }
            }
        }
    }

    #[test]
    fn locally_central_selection_is_maximal() {
        // No enabled processor outside the selection could be added: each
        // must have a selected neighbour.
        let g = ssmfp_topology::gen::line(7);
        let mut d = LocallyCentralDaemon::from_graph(9, &g);
        let enabled: Vec<(NodeId, usize)> = (0..7).map(|p| (p, 1)).collect();
        for _ in 0..50 {
            let sel = d.select(&enabled);
            let selected: Vec<NodeId> = sel.choices.iter().map(|&(p, _)| p).collect();
            for p in 0..7 {
                if !selected.contains(&p) {
                    assert!(
                        g.neighbors(p).iter().any(|q| selected.contains(q)),
                        "{p} could have been added"
                    );
                }
            }
        }
    }

    #[test]
    fn adversarial_starves_victims() {
        let mut d = AdversarialDaemon::new(5, vec![0]);
        let enabled = [(0, 1), (1, 1), (2, 1)];
        for _ in 0..100 {
            let sel = d.select(&enabled);
            assert_ne!(
                sel.choices[0].0, 0,
                "victim must never run while others can"
            );
        }
        // ... but when the victim is the only enabled processor it runs.
        let only_victim = [(0, 1)];
        assert_eq!(d.select(&only_victim).choices, vec![(0, 0)]);
    }
}
