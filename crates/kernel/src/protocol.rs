//! The [`Protocol`] trait: a distributed algorithm as a set of guarded
//! actions over per-processor states, read through a neighbourhood [`View`].

use crate::footprint::{Access, Footprint};
use ssmfp_topology::{Graph, NodeId};
use std::cell::RefCell;
use std::fmt::Debug;
use std::sync::Arc;

/// Record of which processors' states a [`View`] handed out. Backing store
/// of [`TrackedView`]; shared by reference so the `View` stays `Copy`-cheap.
#[derive(Debug, Default)]
pub struct ReadLog {
    touched: RefCell<Vec<NodeId>>,
}

impl ReadLog {
    fn note(&self, q: NodeId) {
        let mut t = self.touched.borrow_mut();
        if !t.contains(&q) {
            t.push(q);
        }
    }
}

/// How a [`View`] stores the configuration it reads: a contiguous slice of
/// states (the engine's layout) or a slice of shared `Arc` handles (the
/// model checker's copy-on-write layout, where successor configurations
/// share every unmodified node with their parent).
enum StatesRef<'a, S> {
    /// One state per node, stored inline.
    Direct(&'a [S]),
    /// One shared handle per node (copy-on-write configurations).
    Shared(&'a [Arc<S>]),
}

impl<'a, S> Clone for StatesRef<'a, S> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<'a, S> Copy for StatesRef<'a, S> {}

impl<'a, S> StatesRef<'a, S> {
    #[inline]
    fn get(self, i: NodeId) -> &'a S {
        match self {
            StatesRef::Direct(s) => &s[i],
            StatesRef::Shared(s) => &s[i],
        }
    }
}

/// Read-only view of the pre-step configuration from processor `p`'s
/// perspective: its own state and (per the shared-memory model) the states
/// of its neighbours. The engine hands the same view to guard evaluation and
/// statement execution within a step, so a statement always sees exactly the
/// configuration its guard was evaluated in.
pub struct View<'a, S> {
    graph: &'a Graph,
    states: StatesRef<'a, S>,
    p: NodeId,
    log: Option<&'a ReadLog>,
}

impl<'a, S> View<'a, S> {
    /// Builds a view for processor `p` over the configuration `states`.
    pub fn new(graph: &'a Graph, states: &'a [S], p: NodeId) -> Self {
        View {
            graph,
            states: StatesRef::Direct(states),
            p,
            log: None,
        }
    }

    /// Builds a view for processor `p` over a copy-on-write configuration
    /// (one shared handle per node). Guards and statements see exactly the
    /// same values as through [`View::new`]; only the storage differs.
    pub fn new_shared(graph: &'a Graph, states: &'a [Arc<S>], p: NodeId) -> Self {
        View {
            graph,
            states: StatesRef::Shared(states),
            p,
            log: None,
        }
    }

    /// The observing processor's identity.
    #[inline]
    pub fn me_id(&self) -> NodeId {
        self.p
    }

    /// The observing processor's own state.
    #[inline]
    pub fn me(&self) -> &S {
        if let Some(log) = self.log {
            log.note(self.p);
        }
        self.states.get(self.p)
    }

    /// State of `q`, which must be the observer itself or one of its
    /// neighbours — the model forbids reading anyone else.
    #[inline]
    pub fn state(&self, q: NodeId) -> &S {
        debug_assert!(
            q == self.p || self.graph.has_edge(self.p, q),
            "state model violation: {} read non-neighbour {}",
            self.p,
            q
        );
        if let Some(log) = self.log {
            log.note(q);
        }
        self.states.get(q)
    }

    /// The neighbour set `N_p` of the observer.
    #[inline]
    pub fn neighbors(&self) -> &'a [NodeId] {
        self.graph.neighbors(self.p)
    }

    /// The underlying network graph (public knowledge: `n`, identities, `Δ`).
    #[inline]
    pub fn graph(&self) -> &'a Graph {
        self.graph
    }
}

/// An instrumented view: owns a [`ReadLog`] and hands out [`View`]s that
/// record which processors' states are actually read. The engine wraps
/// statement execution in one (debug builds) and asserts the observed
/// reads stay within the action's declared [`Footprint`]; tests use it to
/// validate guard read-sets rule by rule.
pub struct TrackedView<'a, S> {
    graph: &'a Graph,
    states: &'a [S],
    p: NodeId,
    log: ReadLog,
}

impl<'a, S> TrackedView<'a, S> {
    /// Builds a tracked view for processor `p` over `states`.
    pub fn new(graph: &'a Graph, states: &'a [S], p: NodeId) -> Self {
        TrackedView {
            graph,
            states,
            p,
            log: ReadLog::default(),
        }
    }

    /// A recording [`View`] borrowing this tracker's log.
    pub fn view(&self) -> View<'_, S> {
        View {
            graph: self.graph,
            states: StatesRef::Direct(self.states),
            p: self.p,
            log: Some(&self.log),
        }
    }

    /// The processors whose state was read so far, sorted.
    pub fn reads(&self) -> Vec<NodeId> {
        let mut t = self.log.touched.borrow().clone();
        t.sort_unstable();
        t
    }

    /// Forgets the reads recorded so far (between guard and statement
    /// phases, say).
    pub fn clear(&self) {
        self.log.touched.borrow_mut().clear();
    }

    /// Panicking validation of the recorded reads against a declaration
    /// (the engine's debug hook; see
    /// [`crate::footprint::assert_reads_within`]).
    pub fn assert_reads_within(&self, declared: &Footprint, describe: &str) {
        crate::footprint::assert_reads_within(
            &self.reads(),
            declared,
            self.p,
            self.graph.neighbors(self.p),
            describe,
        );
    }
}

/// An enabled action at a processor: an opaque protocol-defined identifier
/// plus a human-readable label used in traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Enabled<A> {
    /// Protocol-specific action identifier (e.g. which rule, which
    /// destination instance).
    pub action: A,
}

impl<A> Enabled<A> {
    /// Wraps an action identifier.
    pub fn new(action: A) -> Self {
        Enabled { action }
    }
}

/// A distributed protocol in the locally-shared-memory state model.
///
/// Implementations must keep `enabled_actions` a *pure* function of the view
/// (guards may not mutate anything), and `execute` must only be called with
/// an action that `enabled_actions` just returned for the same view — the
/// engine guarantees this.
pub trait Protocol {
    /// Per-processor local state (the processor's shared variables).
    type State: Clone + Debug;
    /// Action identifier: which guarded rule (and rule parameters, such as a
    /// destination instance) fired.
    type Action: Copy + Eq + Debug;
    /// Observable events emitted by statements (e.g. "message delivered"),
    /// collected by the engine with step/round stamps.
    type Event: Debug;

    /// Evaluates all guards of `p` against `view`, returning the enabled
    /// actions **in priority order** (the first entry is what a
    /// priority-respecting daemon should run).
    fn enabled_actions(&self, view: &View<'_, Self::State>, out: &mut Vec<Self::Action>);

    /// Executes `action` at the viewing processor, returning its new state
    /// and appending any observable events to `events`.
    fn execute(
        &self,
        view: &View<'_, Self::State>,
        action: Self::Action,
        events: &mut Vec<Self::Event>,
    ) -> Self::State;

    /// Human-readable label for an action (for traces and debugging).
    fn describe(&self, action: Self::Action) -> String {
        format!("{action:?}")
    }

    /// The declared static read/write footprint of `action` (see
    /// [`crate::footprint`]). The default is the conservative
    /// [`Footprint::opaque`]: the action may touch anything, is never
    /// independent of anything, and is skipped by the debug validator.
    /// Protocols that declare real footprints unlock the `ssmfp-lint`
    /// analyses and the checker's partial-order reduction.
    fn footprint(&self, _action: Self::Action) -> Footprint {
        Footprint::opaque()
    }

    /// Diffs a pre/post state pair of the acting processor into the write
    /// [`Access`]es actually performed, for debug-build validation against
    /// [`Protocol::footprint`]. `None` (the default) opts out of write
    /// validation.
    fn observe_writes(&self, _pre: &Self::State, _post: &Self::State) -> Option<Vec<Access>> {
        None
    }

    // ---- Scoped incremental guard evaluation (performance layer) -------
    //
    // A protocol whose guards decompose into independent *scopes* (for
    // SSMFP: one scope per destination instance) can tell the engine which
    // scopes a given write can possibly affect, so that a step re-evaluates
    // only those guards instead of every guard of every neighbour. The
    // defaults model a monolithic protocol (one scope, always affected),
    // which reproduces the engine's historical whole-neighbourhood refresh
    // exactly — protocols without declared footprints lose nothing.

    /// Number of independent guard-evaluation scopes per processor. The
    /// default `1` means "all guards form one scope".
    fn guard_scopes(&self) -> usize {
        1
    }

    /// Evaluates the guards of `scope` at the viewing processor, appending
    /// the enabled actions in the protocol's per-scope order. The per-scope
    /// lists, composed by [`Protocol::compose_scopes`], must equal
    /// [`Protocol::enabled_actions`]. The default delegates scope `0` to
    /// `enabled_actions`.
    fn enabled_in_scope(
        &self,
        view: &View<'_, Self::State>,
        scope: usize,
        out: &mut Vec<Self::Action>,
    ) {
        debug_assert_eq!(scope, 0, "monolithic protocols have a single scope");
        self.enabled_actions(view, out);
    }

    /// Combines the cached per-scope enabled lists of one processor into
    /// its final priority-ordered action list (what a daemon sees). Must
    /// agree with [`Protocol::enabled_actions`] on every configuration.
    /// `state` is the processor's current state (for protocols whose action
    /// *ordering* depends on a variable, such as a fairness cursor). The
    /// default concatenates the scopes in index order.
    fn compose_scopes(
        &self,
        state: &Self::State,
        per_scope: &[Vec<Self::Action>],
        out: &mut Vec<Self::Action>,
    ) {
        let _ = state;
        for scope in per_scope {
            out.extend_from_slice(scope);
        }
    }

    /// Conservative dirtiness test: may executing `action` at `writer`
    /// change the outcome of [`Protocol::enabled_in_scope`] for `scope` at
    /// `reader`? The engine calls this for `reader = writer` and for every
    /// neighbour of `writer` after a step; scopes for which it returns
    /// `false` keep their cached guard results. Returning `true` must be
    /// the answer whenever the action's declared write footprint intersects
    /// the scope's guard read footprint — the default `true` (refresh
    /// everything) is always sound.
    fn scope_affected_by(
        &self,
        _action: Self::Action,
        _writer: NodeId,
        _writer_neighbors: &[NodeId],
        _reader: NodeId,
        _reader_neighbors: &[NodeId],
        _scope: usize,
    ) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssmfp_topology::gen;

    #[test]
    fn view_reads_self_and_neighbors() {
        let g = gen::line(3);
        let states = vec![10, 20, 30];
        let v = View::new(&g, &states, 1);
        assert_eq!(v.me_id(), 1);
        assert_eq!(*v.me(), 20);
        assert_eq!(*v.state(0), 10);
        assert_eq!(*v.state(2), 30);
        assert_eq!(v.neighbors(), &[0, 2]);
    }

    #[test]
    #[should_panic(expected = "state model violation")]
    #[cfg(debug_assertions)]
    fn view_rejects_non_neighbor_reads() {
        let g = gen::line(3);
        let states = vec![10, 20, 30];
        let v = View::new(&g, &states, 0);
        let _ = v.state(2); // 2 is not a neighbour of 0 on the line
    }

    #[test]
    fn tracked_view_records_reads() {
        let g = gen::line(3);
        let states = vec![10, 20, 30];
        let t = TrackedView::new(&g, &states, 1);
        assert!(t.reads().is_empty());
        {
            let v = t.view();
            let _ = v.me();
            let _ = v.state(2);
            let _ = v.state(2); // deduplicated
        }
        assert_eq!(t.reads(), vec![1, 2]);
        t.clear();
        assert!(t.reads().is_empty());
    }

    #[test]
    fn plain_view_does_not_track() {
        let g = gen::line(3);
        let states = vec![10, 20, 30];
        let v = View::new(&g, &states, 1);
        let _ = v.state(0);
        assert!(v.log.is_none());
    }
}
