//! The step/round engine: phase loop, composite-atomic writes, event
//! collection, and the paper's round accounting.

use crate::daemon::Daemon;
use crate::protocol::{Protocol, View};
use ssmfp_topology::{Graph, NodeId};

/// Outcome of a single step attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// No processor is enabled: the configuration is terminal.
    Terminal,
    /// A step was executed by `moved` processors.
    Progress {
        /// Number of processors that executed an action in this step.
        moved: usize,
    },
}

/// A recorded step (only kept when tracing is enabled).
#[derive(Debug, Clone)]
pub struct StepRecord<A> {
    /// Step index (0-based).
    pub step: u64,
    /// Round index at the time the step executed.
    pub round: u64,
    /// Which processors moved and which action each executed.
    pub moves: Vec<(NodeId, A)>,
}

/// An observable protocol event with its time stamps.
#[derive(Debug, Clone)]
pub struct EventRecord<E> {
    /// Step at which the event was emitted.
    pub step: u64,
    /// Round at which the event was emitted.
    pub round: u64,
    /// Emitting processor.
    pub node: NodeId,
    /// The event itself.
    pub event: E,
}

/// Summary of a bounded run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunStats {
    /// Steps executed during this call.
    pub steps: u64,
    /// Rounds *completed* during this call.
    pub rounds: u64,
    /// Whether the run ended in a terminal configuration.
    pub terminal: bool,
}

/// Drives a [`Protocol`] over a [`Graph`] under a [`Daemon`], counting steps
/// and rounds and collecting events.
///
/// ```
/// use ssmfp_kernel::toys::{MaxProtocol, MaxState};
/// use ssmfp_kernel::{Engine, SynchronousDaemon};
/// use ssmfp_topology::gen;
///
/// let mut eng = Engine::new(
///     gen::line(4),
///     MaxProtocol,
///     Box::new(SynchronousDaemon),
///     vec![MaxState(7), MaxState(0), MaxState(0), MaxState(0)],
/// );
/// let stats = eng.run(100);
/// assert!(stats.terminal);
/// assert!(eng.states().iter().all(|s| s.0 == 7));
/// assert_eq!(eng.rounds(), 3); // one synchronous round per wavefront hop
/// ```
///
/// Round accounting follows §2.1 exactly: the first round of an execution is
/// the minimal prefix in which every processor enabled in the initial
/// configuration has either executed an action or been *neutralized*
/// (enabled before a step, not enabled after it, without having executed in
/// it). When that set empties, the round counter increments and the set is
/// re-seeded with the currently enabled processors.
pub struct Engine<P: Protocol> {
    graph: Graph,
    protocol: P,
    daemon: Box<dyn Daemon>,
    states: Vec<P::State>,
    /// Enabled actions per processor in the *current* configuration, in the
    /// protocol's priority order.
    enabled: Vec<Vec<P::Action>>,
    /// Processors still owed an action/neutralization in the current round.
    pending: Vec<bool>,
    pending_count: usize,
    steps: u64,
    rounds: u64,
    events: Vec<EventRecord<P::Event>>,
    trace: Option<Vec<StepRecord<P::Action>>>,
    /// Scratch buffers reused across steps.
    scratch_list: Vec<(NodeId, usize)>,
    scratch_events: Vec<P::Event>,
}

impl<P: Protocol> Engine<P> {
    /// Creates an engine from an initial configuration (one state per node).
    pub fn new(graph: Graph, protocol: P, daemon: Box<dyn Daemon>, states: Vec<P::State>) -> Self {
        assert_eq!(
            states.len(),
            graph.n(),
            "configuration size must equal node count"
        );
        let n = graph.n();
        let mut eng = Engine {
            graph,
            protocol,
            daemon,
            states,
            enabled: vec![Vec::new(); n],
            pending: vec![false; n],
            pending_count: 0,
            steps: 0,
            rounds: 0,
            events: Vec::new(),
            trace: None,
            scratch_list: Vec::new(),
            scratch_events: Vec::new(),
        };
        for p in 0..n {
            eng.recompute_enabled(p);
        }
        eng.seed_round();
        eng
    }

    /// Enables step tracing (records every move; memory grows with steps).
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Vec::new());
        }
    }

    /// The recorded trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&[StepRecord<P::Action>]> {
        self.trace.as_deref()
    }

    /// The network graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The protocol instance.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Current local state of `p`.
    pub fn state(&self, p: NodeId) -> &P::State {
        &self.states[p]
    }

    /// The full current configuration.
    pub fn states(&self) -> &[P::State] {
        &self.states
    }

    /// Steps executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Rounds *completed* so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Events emitted so far (with stamps).
    pub fn events(&self) -> &[EventRecord<P::Event>] {
        &self.events
    }

    /// Removes and returns all collected events.
    pub fn drain_events(&mut self) -> Vec<EventRecord<P::Event>> {
        std::mem::take(&mut self.events)
    }

    /// Whether no processor is enabled.
    pub fn is_terminal(&self) -> bool {
        self.enabled.iter().all(Vec::is_empty)
    }

    /// Identities of currently enabled processors (sorted).
    pub fn enabled_processors(&self) -> Vec<NodeId> {
        (0..self.graph.n())
            .filter(|&p| !self.enabled[p].is_empty())
            .collect()
    }

    /// The enabled actions of `p` in the current configuration, in priority
    /// order.
    pub fn enabled_actions_of(&self, p: NodeId) -> &[P::Action] {
        &self.enabled[p]
    }

    /// Externally mutates the state of `p` (higher-layer interaction, fault
    /// injection). Re-evaluates the guards of `p` and its neighbours.
    /// A processor that becomes enabled mid-round was not enabled at the
    /// round's start, so it does not join the round's pending set.
    pub fn mutate_state(&mut self, p: NodeId, f: impl FnOnce(&mut P::State)) {
        f(&mut self.states[p]);
        self.refresh_after_write(p);
    }

    /// Replaces the entire configuration (fault injection: "the system may
    /// start from any configuration"). Resets step/round accounting so the
    /// new configuration is treated as an initial one.
    pub fn reset_configuration(&mut self, states: Vec<P::State>) {
        assert_eq!(states.len(), self.graph.n());
        self.states = states;
        self.steps = 0;
        self.rounds = 0;
        self.events.clear();
        if let Some(t) = &mut self.trace {
            t.clear();
        }
        for p in 0..self.graph.n() {
            self.recompute_enabled(p);
        }
        self.seed_round();
    }

    fn recompute_enabled(&mut self, p: NodeId) {
        let mut actions = std::mem::take(&mut self.enabled[p]);
        actions.clear();
        {
            let view = View::new(&self.graph, &self.states, p);
            self.protocol.enabled_actions(&view, &mut actions);
        }
        self.enabled[p] = actions;
    }

    fn refresh_after_write(&mut self, p: NodeId) {
        self.recompute_enabled(p);
        let neighbors: Vec<NodeId> = self.graph.neighbors(p).to_vec();
        for q in neighbors {
            self.recompute_enabled(q);
        }
    }

    fn seed_round(&mut self) {
        self.pending_count = 0;
        for p in 0..self.graph.n() {
            let en = !self.enabled[p].is_empty();
            self.pending[p] = en;
            if en {
                self.pending_count += 1;
            }
        }
    }

    /// Executes one atomic step: guard evaluation is already cached, the
    /// daemon selects, the chosen processors execute against the pre-step
    /// configuration, and all writes land together.
    pub fn step(&mut self) -> StepOutcome {
        // Phase (i): guards are current in `self.enabled`.
        self.scratch_list.clear();
        for p in 0..self.graph.n() {
            if !self.enabled[p].is_empty() {
                self.scratch_list.push((p, self.enabled[p].len()));
            }
        }
        if self.scratch_list.is_empty() {
            return StepOutcome::Terminal;
        }

        // Phase (ii): the daemon chooses.
        let selection = {
            let list = std::mem::take(&mut self.scratch_list);
            let sel = self.daemon.select(&list);
            self.scratch_list = list;
            sel
        };
        assert!(
            !selection.choices.is_empty(),
            "daemon '{}' returned an empty selection",
            self.daemon.name()
        );

        // Phase (iii): all chosen processors execute against the PRE-step
        // configuration; their writes are applied together afterwards.
        let mut writes: Vec<(NodeId, P::State, P::Action)> =
            Vec::with_capacity(selection.choices.len());
        let mut chosen_seen = vec![false; self.graph.n()];
        for &(p, action_idx) in &selection.choices {
            assert!(
                !chosen_seen[p],
                "daemon '{}' selected processor {p} twice in one step",
                self.daemon.name()
            );
            chosen_seen[p] = true;
            let action = *self.enabled[p]
                .get(action_idx)
                .unwrap_or_else(|| panic!("daemon chose out-of-range action {action_idx} at {p}"));
            self.scratch_events.clear();
            #[cfg(debug_assertions)]
            let new_state = {
                // Debug builds execute through a TrackedView and validate
                // the observed reads/writes against the action's declared
                // footprint (no-op for opaque footprints).
                let tracked = crate::protocol::TrackedView::new(&self.graph, &self.states, p);
                let new_state =
                    self.protocol
                        .execute(&tracked.view(), action, &mut self.scratch_events);
                let declared = self.protocol.footprint(action);
                if !declared.opaque {
                    let label = self.protocol.describe(action);
                    tracked.assert_reads_within(&declared, &label);
                    if let Some(observed) =
                        self.protocol.observe_writes(&self.states[p], &new_state)
                    {
                        crate::footprint::assert_writes_within(&observed, &declared, p, &label);
                    }
                }
                new_state
            };
            #[cfg(not(debug_assertions))]
            let new_state = {
                let view = View::new(&self.graph, &self.states, p);
                self.protocol
                    .execute(&view, action, &mut self.scratch_events)
            };
            for ev in self.scratch_events.drain(..) {
                self.events.push(EventRecord {
                    step: self.steps,
                    round: self.rounds,
                    node: p,
                    event: ev,
                });
            }
            writes.push((p, new_state, action));
        }

        if let Some(trace) = &mut self.trace {
            trace.push(StepRecord {
                step: self.steps,
                round: self.rounds,
                moves: writes.iter().map(|(p, _, a)| (*p, *a)).collect(),
            });
        }

        // Snapshot which processors were enabled before the writes (for
        // neutralization detection).
        let was_enabled: Vec<bool> = self.enabled.iter().map(|v| !v.is_empty()).collect();

        // Apply the composite write.
        let mut touched: Vec<NodeId> = Vec::new();
        for (p, new_state, _) in writes.iter() {
            self.states[*p] = new_state.clone();
            touched.push(*p);
        }
        // Re-evaluate guards of written processors and their neighbourhoods.
        let mut dirty = vec![false; self.graph.n()];
        for &p in &touched {
            dirty[p] = true;
            for &q in self.graph.neighbors(p) {
                dirty[q] = true;
            }
        }
        for p in 0..self.graph.n() {
            if dirty[p] {
                self.recompute_enabled(p);
            }
        }

        // Round accounting: executors leave the pending set; so do
        // neutralized processors (enabled before, not after, did not move).
        for &p in &touched {
            if self.pending[p] {
                self.pending[p] = false;
                self.pending_count -= 1;
            }
        }
        for p in 0..self.graph.n() {
            if self.pending[p] && was_enabled[p] && self.enabled[p].is_empty() && !chosen_seen[p] {
                self.pending[p] = false;
                self.pending_count -= 1;
            }
        }

        self.steps += 1;
        if self.pending_count == 0 {
            self.rounds += 1;
            self.seed_round();
        }

        StepOutcome::Progress {
            moved: touched.len(),
        }
    }

    /// Runs until terminal or `max_steps`, returning run statistics.
    pub fn run(&mut self, max_steps: u64) -> RunStats {
        let start_steps = self.steps;
        let start_rounds = self.rounds;
        let mut terminal = false;
        while self.steps - start_steps < max_steps {
            match self.step() {
                StepOutcome::Terminal => {
                    terminal = true;
                    break;
                }
                StepOutcome::Progress { .. } => {}
            }
        }
        RunStats {
            steps: self.steps - start_steps,
            rounds: self.rounds - start_rounds,
            terminal,
        }
    }

    /// Runs until `stop` returns true, the configuration is terminal, or
    /// `max_steps` elapse. `stop` is evaluated after every step.
    pub fn run_until(&mut self, max_steps: u64, mut stop: impl FnMut(&Self) -> bool) -> RunStats {
        let start_steps = self.steps;
        let start_rounds = self.rounds;
        let mut terminal = false;
        while self.steps - start_steps < max_steps {
            match self.step() {
                StepOutcome::Terminal => {
                    terminal = true;
                    break;
                }
                StepOutcome::Progress { .. } => {
                    if stop(self) {
                        break;
                    }
                }
            }
        }
        RunStats {
            steps: self.steps - start_steps,
            rounds: self.rounds - start_rounds,
            terminal,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::{RoundRobinDaemon, SynchronousDaemon};
    use crate::toys::{MaxProtocol, MaxState};
    use ssmfp_topology::gen;

    fn max_engine(n: usize, values: Vec<u64>, daemon: Box<dyn Daemon>) -> Engine<MaxProtocol> {
        let g = gen::line(n);
        let states = values.into_iter().map(MaxState).collect();
        Engine::new(g, MaxProtocol, daemon, states)
    }

    #[test]
    fn converges_to_terminal() {
        let mut eng = max_engine(5, vec![3, 1, 4, 1, 5], Box::new(SynchronousDaemon));
        let stats = eng.run(1_000);
        assert!(stats.terminal);
        assert!(eng.states().iter().all(|s| s.0 == 5));
        assert!(eng.is_terminal());
    }

    #[test]
    fn synchronous_rounds_equal_propagation_distance() {
        // Max value at node 0 of a line: under the synchronous daemon the
        // value reaches node n−1 in exactly n−1 steps, each step being one
        // round (every enabled processor moves every step).
        let n = 6;
        let mut eng = max_engine(n, vec![9, 0, 0, 0, 0, 0], Box::new(SynchronousDaemon));
        let stats = eng.run(1_000);
        assert!(stats.terminal);
        assert_eq!(eng.steps(), (n - 1) as u64);
        // Completed rounds = n−1 (the final check that nothing is enabled
        // does not start a new round).
        assert_eq!(eng.rounds(), (n - 1) as u64);
    }

    #[test]
    fn round_robin_counts_rounds() {
        let mut eng = max_engine(4, vec![7, 0, 0, 0], Box::new(RoundRobinDaemon::new()));
        let stats = eng.run(1_000);
        assert!(stats.terminal);
        // Rounds are bounded by steps, and at least the propagation distance.
        assert!(eng.rounds() >= 3);
        assert!(eng.rounds() <= eng.steps());
        assert!(eng.states().iter().all(|s| s.0 == 7));
    }

    #[test]
    fn terminal_step_reports_terminal() {
        let mut eng = max_engine(3, vec![2, 2, 2], Box::new(SynchronousDaemon));
        assert!(eng.is_terminal());
        assert_eq!(eng.step(), StepOutcome::Terminal);
        assert_eq!(eng.steps(), 0);
    }

    #[test]
    fn mutate_state_reenables() {
        let mut eng = max_engine(3, vec![1, 1, 1], Box::new(SynchronousDaemon));
        assert!(eng.is_terminal());
        eng.mutate_state(0, |s| s.0 = 8);
        assert!(!eng.is_terminal());
        let stats = eng.run(100);
        assert!(stats.terminal);
        assert!(eng.states().iter().all(|s| s.0 == 8));
    }

    #[test]
    fn reset_configuration_restarts_accounting() {
        let mut eng = max_engine(3, vec![1, 0, 0], Box::new(SynchronousDaemon));
        eng.run(100);
        assert!(eng.steps() > 0);
        eng.reset_configuration(vec![MaxState(5), MaxState(0), MaxState(0)]);
        assert_eq!(eng.steps(), 0);
        assert_eq!(eng.rounds(), 0);
        let stats = eng.run(100);
        assert!(stats.terminal);
        assert!(eng.states().iter().all(|s| s.0 == 5));
    }

    #[test]
    fn trace_records_moves() {
        let mut eng = max_engine(3, vec![4, 0, 0], Box::new(RoundRobinDaemon::new()));
        eng.enable_trace();
        eng.run(100);
        let trace = eng.trace().unwrap();
        assert!(!trace.is_empty());
        assert!(trace.iter().all(|r| r.moves.len() == 1)); // central daemon
    }

    #[test]
    fn run_until_stops_early() {
        let mut eng = max_engine(
            10,
            (0..10).rev().map(|v| v as u64).collect(),
            Box::new(RoundRobinDaemon::new()),
        );
        let stats = eng.run_until(10_000, |e| e.state(9).0 == 9);
        assert!(!stats.terminal || eng.state(9).0 == 9);
        assert_eq!(eng.state(9).0, 9);
    }
}
