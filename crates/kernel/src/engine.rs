//! The step/round engine: phase loop, composite-atomic writes, event
//! collection, and the paper's round accounting.

use crate::daemon::Daemon;
use crate::protocol::{Protocol, View};
use ssmfp_topology::{Graph, NodeId};

/// A hook invoked at the top of every [`Engine::step`] call, *before* the
/// terminal check and the daemon's selection — the window in which the
/// paper's transient faults strike ("between daemon selections"). The hook
/// may rewrite node states arbitrarily; it must push the id of every node
/// it touched into `touched` so the engine can re-evaluate the affected
/// guards (each touched node and its whole neighbourhood, exactly as
/// [`Engine::mutate_state`] does). Because the hook runs before the
/// terminal check, it can revive a quiescent network.
///
/// Hook-driven mutations follow the `mutate_state` round-accounting rule:
/// a processor that becomes enabled mid-round does not join the current
/// round's pending set.
pub trait StepHook<P: Protocol> {
    /// Called with the index of the step about to execute, the graph, and
    /// the mutable configuration.
    fn before_step(
        &mut self,
        step: u64,
        graph: &Graph,
        states: &mut [P::State],
        touched: &mut Vec<NodeId>,
    );
}

/// Outcome of a single step attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// No processor is enabled: the configuration is terminal.
    Terminal,
    /// A step was executed by `moved` processors.
    Progress {
        /// Number of processors that executed an action in this step.
        moved: usize,
    },
}

/// A recorded step (only kept when tracing is enabled).
#[derive(Debug, Clone)]
pub struct StepRecord<A> {
    /// Step index (0-based).
    pub step: u64,
    /// Round index at the time the step executed.
    pub round: u64,
    /// Which processors moved and which action each executed.
    pub moves: Vec<(NodeId, A)>,
}

/// An observable protocol event with its time stamps.
#[derive(Debug, Clone)]
pub struct EventRecord<E> {
    /// Step at which the event was emitted.
    pub step: u64,
    /// Round at which the event was emitted.
    pub round: u64,
    /// Emitting processor.
    pub node: NodeId,
    /// The event itself.
    pub event: E,
}

/// Summary of a bounded run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunStats {
    /// Steps executed during this call.
    pub steps: u64,
    /// Rounds *completed* during this call.
    pub rounds: u64,
    /// Whether the run ended in a terminal configuration.
    pub terminal: bool,
}

/// Drives a [`Protocol`] over a [`Graph`] under a [`Daemon`], counting steps
/// and rounds and collecting events.
///
/// ```
/// use ssmfp_kernel::toys::{MaxProtocol, MaxState};
/// use ssmfp_kernel::{Engine, SynchronousDaemon};
/// use ssmfp_topology::gen;
///
/// let mut eng = Engine::new(
///     gen::line(4),
///     MaxProtocol,
///     Box::new(SynchronousDaemon),
///     vec![MaxState(7), MaxState(0), MaxState(0), MaxState(0)],
/// );
/// let stats = eng.run(100);
/// assert!(stats.terminal);
/// assert!(eng.states().iter().all(|s| s.0 == 7));
/// assert_eq!(eng.rounds(), 3); // one synchronous round per wavefront hop
/// ```
///
/// Round accounting follows §2.1 exactly: the first round of an execution is
/// the minimal prefix in which every processor enabled in the initial
/// configuration has either executed an action or been *neutralized*
/// (enabled before a step, not enabled after it, without having executed in
/// it). When that set empties, the round counter increments and the set is
/// re-seeded with the currently enabled processors.
pub struct Engine<P: Protocol> {
    graph: Graph,
    protocol: P,
    daemon: Box<dyn Daemon>,
    states: Vec<P::State>,
    /// Enabled actions per processor in the *current* configuration, in the
    /// protocol's priority order (the composition of `scope_enabled`).
    enabled: Vec<Vec<P::Action>>,
    /// Cached per-scope guard results: `scope_enabled[p][s]` holds the
    /// enabled actions of scope `s` at processor `p`. After a write, only
    /// the scopes whose guard read footprint can intersect the written
    /// variable classes (per [`Protocol::scope_affected_by`]) are
    /// re-evaluated.
    scope_enabled: Vec<Vec<Vec<P::Action>>>,
    /// `protocol.guard_scopes()`, cached.
    scope_count: usize,
    /// When true, ignore the protocol's dirtiness test and refresh every
    /// scope of the written processors and their whole neighbourhoods (the
    /// historical behaviour; kept as a baseline for benchmarks and
    /// equivalence tests).
    full_refresh: bool,
    /// Processors still owed an action/neutralization in the current round.
    pending: Vec<bool>,
    pending_count: usize,
    steps: u64,
    rounds: u64,
    events: Vec<EventRecord<P::Event>>,
    trace: Option<Vec<StepRecord<P::Action>>>,
    /// Optional pre-step hook (fault injection, external stimuli).
    hook: Option<Box<dyn StepHook<P>>>,
    /// Scratch buffers reused across steps (no per-step allocation).
    scratch_list: Vec<(NodeId, usize)>,
    scratch_events: Vec<P::Event>,
    scratch_chosen: Vec<bool>,
    scratch_writes: Vec<(NodeId, P::State, P::Action)>,
    scratch_touched: Vec<(NodeId, P::Action)>,
    scratch_was_enabled: Vec<bool>,
    /// Dirty flags per `(processor, scope)` (flattened `p * scope_count + s`)
    /// plus the marked list used to reset only what was set.
    scratch_dirty: Vec<bool>,
    scratch_marked: Vec<(NodeId, usize)>,
    scratch_recompose: Vec<bool>,
    scratch_hook_touched: Vec<NodeId>,
}

impl<P: Protocol> Engine<P> {
    /// Creates an engine from an initial configuration (one state per node).
    pub fn new(graph: Graph, protocol: P, daemon: Box<dyn Daemon>, states: Vec<P::State>) -> Self {
        assert_eq!(
            states.len(),
            graph.n(),
            "configuration size must equal node count"
        );
        let n = graph.n();
        let scope_count = protocol.guard_scopes().max(1);
        let mut eng = Engine {
            graph,
            protocol,
            daemon,
            states,
            enabled: vec![Vec::new(); n],
            scope_enabled: vec![vec![Vec::new(); scope_count]; n],
            scope_count,
            full_refresh: false,
            pending: vec![false; n],
            pending_count: 0,
            steps: 0,
            rounds: 0,
            events: Vec::new(),
            trace: None,
            hook: None,
            scratch_list: Vec::new(),
            scratch_events: Vec::new(),
            scratch_chosen: vec![false; n],
            scratch_writes: Vec::new(),
            scratch_touched: Vec::new(),
            scratch_was_enabled: vec![false; n],
            scratch_dirty: vec![false; n * scope_count],
            scratch_marked: Vec::new(),
            scratch_recompose: vec![false; n],
            scratch_hook_touched: Vec::new(),
        };
        for p in 0..n {
            eng.recompute_enabled(p);
        }
        eng.seed_round();
        eng
    }

    /// Disables (or re-enables) footprint-driven incremental guard refresh.
    /// With `true`, every step refreshes every scope of the written
    /// processors and their neighbourhoods — the engine's historical
    /// behaviour, kept as the comparison baseline.
    pub fn set_full_refresh(&mut self, full: bool) {
        self.full_refresh = full;
    }

    /// Enables step tracing (records every move; memory grows with steps).
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Vec::new());
        }
    }

    /// The recorded trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&[StepRecord<P::Action>]> {
        self.trace.as_deref()
    }

    /// The network graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The protocol instance.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Current local state of `p`.
    pub fn state(&self, p: NodeId) -> &P::State {
        &self.states[p]
    }

    /// The full current configuration.
    pub fn states(&self) -> &[P::State] {
        &self.states
    }

    /// Steps executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Rounds *completed* so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Events emitted so far (with stamps).
    pub fn events(&self) -> &[EventRecord<P::Event>] {
        &self.events
    }

    /// Removes and returns all collected events.
    pub fn drain_events(&mut self) -> Vec<EventRecord<P::Event>> {
        std::mem::take(&mut self.events)
    }

    /// Moves all collected events into `out`, preserving the internal
    /// buffer's capacity. Callers that poll events every few steps should
    /// prefer this over [`Engine::drain_events`], which surrenders the
    /// buffer and forces a fresh allocation on the next emission.
    pub fn drain_events_into(&mut self, out: &mut Vec<EventRecord<P::Event>>) {
        out.append(&mut self.events);
    }

    /// Whether no processor is enabled.
    pub fn is_terminal(&self) -> bool {
        self.enabled.iter().all(Vec::is_empty)
    }

    /// Identities of currently enabled processors (ascending).
    pub fn enabled_processors(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.graph.n()).filter(|&p| !self.enabled[p].is_empty())
    }

    /// The enabled actions of `p` in the current configuration, in priority
    /// order.
    pub fn enabled_actions_of(&self, p: NodeId) -> &[P::Action] {
        &self.enabled[p]
    }

    /// Externally mutates the state of `p` (higher-layer interaction, fault
    /// injection). Re-evaluates the guards of `p` and its neighbours.
    /// A processor that becomes enabled mid-round was not enabled at the
    /// round's start, so it does not join the round's pending set.
    pub fn mutate_state(&mut self, p: NodeId, f: impl FnOnce(&mut P::State)) {
        f(&mut self.states[p]);
        self.refresh_after_write(p);
    }

    /// Externally mutates any subset of the configuration with read access
    /// to the graph (multi-node fault injection). The closure pushes every
    /// node it touched into the provided list; the engine then re-evaluates
    /// the guards of each touched node and its neighbourhood, exactly as
    /// [`Engine::mutate_state`] does.
    pub fn mutate_with_graph(&mut self, f: impl FnOnce(&Graph, &mut [P::State], &mut Vec<NodeId>)) {
        let mut touched = std::mem::take(&mut self.scratch_hook_touched);
        touched.clear();
        f(&self.graph, &mut self.states, &mut touched);
        for &p in &touched {
            self.refresh_after_write(p);
        }
        self.scratch_hook_touched = touched;
    }

    /// Installs a pre-step hook (replacing any previous one). The hook runs
    /// at the top of every subsequent [`Engine::step`] call.
    pub fn set_step_hook(&mut self, hook: Box<dyn StepHook<P>>) {
        self.hook = Some(hook);
    }

    /// Removes and returns the installed pre-step hook, if any.
    pub fn clear_step_hook(&mut self) -> Option<Box<dyn StepHook<P>>> {
        self.hook.take()
    }

    /// Replaces the entire configuration (fault injection: "the system may
    /// start from any configuration"). Resets step/round accounting so the
    /// new configuration is treated as an initial one.
    pub fn reset_configuration(&mut self, states: Vec<P::State>) {
        assert_eq!(states.len(), self.graph.n());
        self.states = states;
        self.steps = 0;
        self.rounds = 0;
        self.events.clear();
        if let Some(t) = &mut self.trace {
            t.clear();
        }
        for p in 0..self.graph.n() {
            self.recompute_enabled(p);
        }
        self.seed_round();
    }

    /// Re-evaluates the guards of one scope at `p` into the scope cache.
    fn recompute_scope(&mut self, p: NodeId, scope: usize) {
        let mut actions = std::mem::take(&mut self.scope_enabled[p][scope]);
        actions.clear();
        {
            let view = View::new(&self.graph, &self.states, p);
            self.protocol.enabled_in_scope(&view, scope, &mut actions);
        }
        self.scope_enabled[p][scope] = actions;
    }

    /// Rebuilds `enabled[p]` from the cached per-scope lists.
    fn recompose(&mut self, p: NodeId) {
        let mut out = std::mem::take(&mut self.enabled[p]);
        out.clear();
        self.protocol
            .compose_scopes(&self.states[p], &self.scope_enabled[p], &mut out);
        self.enabled[p] = out;
    }

    /// Full refresh of one processor: every scope plus the composition.
    fn recompute_enabled(&mut self, p: NodeId) {
        for s in 0..self.scope_count {
            self.recompute_scope(p, s);
        }
        self.recompose(p);
    }

    /// Full refresh of `p` and its whole neighbourhood — used after
    /// arbitrary external mutation ([`Engine::mutate_state`]), where no
    /// footprint bounds the write.
    fn refresh_after_write(&mut self, p: NodeId) {
        self.recompute_enabled(p);
        for i in 0..self.graph.degree(p) {
            let q = self.graph.neighbors(p)[i];
            self.recompute_enabled(q);
        }
    }

    fn seed_round(&mut self) {
        self.pending_count = 0;
        for p in 0..self.graph.n() {
            let en = !self.enabled[p].is_empty();
            self.pending[p] = en;
            if en {
                self.pending_count += 1;
            }
        }
    }

    /// Executes one atomic step: guard evaluation is already cached, the
    /// daemon selects, the chosen processors execute against the pre-step
    /// configuration, and all writes land together.
    pub fn step(&mut self) -> StepOutcome {
        // Phase (0): the pre-step hook (fault injection) may rewrite states
        // before the terminal check — a fault can revive a quiescent
        // network, so the check must see the post-fault configuration.
        if let Some(mut hook) = self.hook.take() {
            let mut touched = std::mem::take(&mut self.scratch_hook_touched);
            touched.clear();
            hook.before_step(self.steps, &self.graph, &mut self.states, &mut touched);
            for &p in &touched {
                self.refresh_after_write(p);
            }
            self.scratch_hook_touched = touched;
            self.hook = Some(hook);
        }

        // Phase (i): guards are current in `self.enabled`.
        self.scratch_list.clear();
        for p in 0..self.graph.n() {
            if !self.enabled[p].is_empty() {
                self.scratch_list.push((p, self.enabled[p].len()));
            }
        }
        if self.scratch_list.is_empty() {
            return StepOutcome::Terminal;
        }

        // Phase (ii): the daemon chooses.
        let selection = {
            let list = std::mem::take(&mut self.scratch_list);
            let sel = self.daemon.select(&list);
            self.scratch_list = list;
            sel
        };
        assert!(
            !selection.choices.is_empty(),
            "daemon '{}' returned an empty selection",
            self.daemon.name()
        );

        // Phase (iii): all chosen processors execute against the PRE-step
        // configuration; their writes are applied together afterwards.
        self.scratch_writes.clear();
        self.scratch_chosen.fill(false);
        for &(p, action_idx) in &selection.choices {
            assert!(
                !self.scratch_chosen[p],
                "daemon '{}' selected processor {p} twice in one step",
                self.daemon.name()
            );
            self.scratch_chosen[p] = true;
            let action = *self.enabled[p]
                .get(action_idx)
                .unwrap_or_else(|| panic!("daemon chose out-of-range action {action_idx} at {p}"));
            self.scratch_events.clear();
            #[cfg(debug_assertions)]
            let new_state = {
                // Debug builds execute through a TrackedView and validate
                // the observed reads/writes against the action's declared
                // footprint (no-op for opaque footprints).
                let tracked = crate::protocol::TrackedView::new(&self.graph, &self.states, p);
                let new_state =
                    self.protocol
                        .execute(&tracked.view(), action, &mut self.scratch_events);
                let declared = self.protocol.footprint(action);
                if !declared.opaque {
                    let label = self.protocol.describe(action);
                    tracked.assert_reads_within(&declared, &label);
                    if let Some(observed) =
                        self.protocol.observe_writes(&self.states[p], &new_state)
                    {
                        crate::footprint::assert_writes_within(&observed, &declared, p, &label);
                    }
                }
                new_state
            };
            #[cfg(not(debug_assertions))]
            let new_state = {
                let view = View::new(&self.graph, &self.states, p);
                self.protocol
                    .execute(&view, action, &mut self.scratch_events)
            };
            for ev in self.scratch_events.drain(..) {
                self.events.push(EventRecord {
                    step: self.steps,
                    round: self.rounds,
                    node: p,
                    event: ev,
                });
            }
            self.scratch_writes.push((p, new_state, action));
        }

        if let Some(trace) = &mut self.trace {
            trace.push(StepRecord {
                step: self.steps,
                round: self.rounds,
                moves: self
                    .scratch_writes
                    .iter()
                    .map(|(p, _, a)| (*p, *a))
                    .collect(),
            });
        }

        // Snapshot which processors were enabled before the writes (for
        // neutralization detection).
        for p in 0..self.graph.n() {
            self.scratch_was_enabled[p] = !self.enabled[p].is_empty();
        }

        // Apply the composite write (states are moved, not cloned).
        self.scratch_touched.clear();
        for (p, new_state, action) in self.scratch_writes.drain(..) {
            self.states[p] = new_state;
            self.scratch_touched.push((p, action));
        }

        // Footprint-driven dirty-set refresh: for each write, mark the
        // `(processor, scope)` guard instances whose declared read footprint
        // can intersect the written variable classes, re-evaluate exactly
        // those, and recompose the affected processors' action lists. With
        // `full_refresh` (or the default monolithic scope), this degenerates
        // to the historical whole-neighbourhood re-evaluation.
        self.scratch_marked.clear();
        {
            let graph = &self.graph;
            let protocol = &self.protocol;
            let scope_count = self.scope_count;
            let full = self.full_refresh;
            let dirty = &mut self.scratch_dirty;
            let marked = &mut self.scratch_marked;
            let recompose = &mut self.scratch_recompose;
            let mut mark = |q: NodeId, s: usize| {
                let idx = q * scope_count + s;
                if !dirty[idx] {
                    dirty[idx] = true;
                    marked.push((q, s));
                }
            };
            for &(p, action) in &self.scratch_touched {
                let p_nbrs = graph.neighbors(p);
                // The writer always recomposes: action ordering may depend
                // on its own (just written) state even when no guard does.
                recompose[p] = true;
                for s in 0..scope_count {
                    if full || protocol.scope_affected_by(action, p, p_nbrs, p, p_nbrs, s) {
                        mark(p, s);
                    }
                }
                for &q in p_nbrs {
                    let q_nbrs = graph.neighbors(q);
                    for s in 0..scope_count {
                        if full || protocol.scope_affected_by(action, p, p_nbrs, q, q_nbrs, s) {
                            mark(q, s);
                        }
                    }
                }
            }
        }
        for i in 0..self.scratch_marked.len() {
            let (q, s) = self.scratch_marked[i];
            self.recompute_scope(q, s);
            self.scratch_recompose[q] = true;
        }
        for i in 0..self.scratch_marked.len() {
            let (q, s) = self.scratch_marked[i];
            self.scratch_dirty[q * self.scope_count + s] = false;
        }
        for q in 0..self.graph.n() {
            if self.scratch_recompose[q] {
                self.scratch_recompose[q] = false;
                self.recompose(q);
            }
        }

        // Round accounting: executors leave the pending set; so do
        // neutralized processors (enabled before, not after, did not move).
        for &(p, _) in &self.scratch_touched {
            if self.pending[p] {
                self.pending[p] = false;
                self.pending_count -= 1;
            }
        }
        for p in 0..self.graph.n() {
            if self.pending[p]
                && self.scratch_was_enabled[p]
                && self.enabled[p].is_empty()
                && !self.scratch_chosen[p]
            {
                self.pending[p] = false;
                self.pending_count -= 1;
            }
        }

        self.steps += 1;
        if self.pending_count == 0 {
            self.rounds += 1;
            self.seed_round();
        }

        StepOutcome::Progress {
            moved: self.scratch_touched.len(),
        }
    }

    /// Runs until terminal or `max_steps`, returning run statistics.
    pub fn run(&mut self, max_steps: u64) -> RunStats {
        let start_steps = self.steps;
        let start_rounds = self.rounds;
        let mut terminal = false;
        while self.steps - start_steps < max_steps {
            match self.step() {
                StepOutcome::Terminal => {
                    terminal = true;
                    break;
                }
                StepOutcome::Progress { .. } => {}
            }
        }
        RunStats {
            steps: self.steps - start_steps,
            rounds: self.rounds - start_rounds,
            terminal,
        }
    }

    /// Runs until `stop` returns true, the configuration is terminal, or
    /// `max_steps` elapse. `stop` is evaluated after every step.
    pub fn run_until(&mut self, max_steps: u64, mut stop: impl FnMut(&Self) -> bool) -> RunStats {
        let start_steps = self.steps;
        let start_rounds = self.rounds;
        let mut terminal = false;
        while self.steps - start_steps < max_steps {
            match self.step() {
                StepOutcome::Terminal => {
                    terminal = true;
                    break;
                }
                StepOutcome::Progress { .. } => {
                    if stop(self) {
                        break;
                    }
                }
            }
        }
        RunStats {
            steps: self.steps - start_steps,
            rounds: self.rounds - start_rounds,
            terminal,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::{RoundRobinDaemon, SynchronousDaemon};
    use crate::toys::{MaxProtocol, MaxState};
    use ssmfp_topology::gen;

    fn max_engine(n: usize, values: Vec<u64>, daemon: Box<dyn Daemon>) -> Engine<MaxProtocol> {
        let g = gen::line(n);
        let states = values.into_iter().map(MaxState).collect();
        Engine::new(g, MaxProtocol, daemon, states)
    }

    #[test]
    fn converges_to_terminal() {
        let mut eng = max_engine(5, vec![3, 1, 4, 1, 5], Box::new(SynchronousDaemon));
        let stats = eng.run(1_000);
        assert!(stats.terminal);
        assert!(eng.states().iter().all(|s| s.0 == 5));
        assert!(eng.is_terminal());
    }

    #[test]
    fn synchronous_rounds_equal_propagation_distance() {
        // Max value at node 0 of a line: under the synchronous daemon the
        // value reaches node n−1 in exactly n−1 steps, each step being one
        // round (every enabled processor moves every step).
        let n = 6;
        let mut eng = max_engine(n, vec![9, 0, 0, 0, 0, 0], Box::new(SynchronousDaemon));
        let stats = eng.run(1_000);
        assert!(stats.terminal);
        assert_eq!(eng.steps(), (n - 1) as u64);
        // Completed rounds = n−1 (the final check that nothing is enabled
        // does not start a new round).
        assert_eq!(eng.rounds(), (n - 1) as u64);
    }

    #[test]
    fn round_robin_counts_rounds() {
        let mut eng = max_engine(4, vec![7, 0, 0, 0], Box::new(RoundRobinDaemon::new()));
        let stats = eng.run(1_000);
        assert!(stats.terminal);
        // Rounds are bounded by steps, and at least the propagation distance.
        assert!(eng.rounds() >= 3);
        assert!(eng.rounds() <= eng.steps());
        assert!(eng.states().iter().all(|s| s.0 == 7));
    }

    #[test]
    fn terminal_step_reports_terminal() {
        let mut eng = max_engine(3, vec![2, 2, 2], Box::new(SynchronousDaemon));
        assert!(eng.is_terminal());
        assert_eq!(eng.step(), StepOutcome::Terminal);
        assert_eq!(eng.steps(), 0);
    }

    #[test]
    fn mutate_state_reenables() {
        let mut eng = max_engine(3, vec![1, 1, 1], Box::new(SynchronousDaemon));
        assert!(eng.is_terminal());
        eng.mutate_state(0, |s| s.0 = 8);
        assert!(!eng.is_terminal());
        let stats = eng.run(100);
        assert!(stats.terminal);
        assert!(eng.states().iter().all(|s| s.0 == 8));
    }

    #[test]
    fn reset_configuration_restarts_accounting() {
        let mut eng = max_engine(3, vec![1, 0, 0], Box::new(SynchronousDaemon));
        eng.run(100);
        assert!(eng.steps() > 0);
        eng.reset_configuration(vec![MaxState(5), MaxState(0), MaxState(0)]);
        assert_eq!(eng.steps(), 0);
        assert_eq!(eng.rounds(), 0);
        let stats = eng.run(100);
        assert!(stats.terminal);
        assert!(eng.states().iter().all(|s| s.0 == 5));
    }

    #[test]
    fn trace_records_moves() {
        let mut eng = max_engine(3, vec![4, 0, 0], Box::new(RoundRobinDaemon::new()));
        eng.enable_trace();
        eng.run(100);
        let trace = eng.trace().unwrap();
        assert!(!trace.is_empty());
        assert!(trace.iter().all(|r| r.moves.len() == 1)); // central daemon
    }

    /// A toy fault hook: at one chosen step, overwrite one node's value.
    struct SpikeHook {
        at_step: u64,
        node: NodeId,
        value: u64,
        fired: bool,
    }

    impl StepHook<MaxProtocol> for SpikeHook {
        fn before_step(
            &mut self,
            step: u64,
            _graph: &Graph,
            states: &mut [MaxState],
            touched: &mut Vec<NodeId>,
        ) {
            if !self.fired && step >= self.at_step {
                states[self.node].0 = self.value;
                touched.push(self.node);
                self.fired = true;
            }
        }
    }

    #[test]
    fn step_hook_revives_terminal_network() {
        // Converge first, then install a hook that injects a larger value:
        // the very next step() must see the new enabled processor instead
        // of reporting Terminal, and the network re-converges to it.
        let mut eng = max_engine(4, vec![3, 0, 0, 0], Box::new(SynchronousDaemon));
        assert!(eng.run(100).terminal);
        assert!(eng.is_terminal());
        let resume_at = eng.steps();
        eng.set_step_hook(Box::new(SpikeHook {
            at_step: resume_at,
            node: 2,
            value: 9,
            fired: false,
        }));
        let stats = eng.run(100);
        assert!(stats.terminal);
        assert!(eng.states().iter().all(|s| s.0 == 9));
        assert!(eng.clear_step_hook().is_some());
    }

    #[test]
    fn step_hook_fires_before_daemon_selection() {
        // The hook rewrites node 0 at step 0, before any move: the run
        // must propagate the hook's value, not the initial one.
        let mut eng = max_engine(3, vec![5, 0, 0], Box::new(SynchronousDaemon));
        eng.set_step_hook(Box::new(SpikeHook {
            at_step: 0,
            node: 0,
            value: 8,
            fired: false,
        }));
        let stats = eng.run(100);
        assert!(stats.terminal);
        assert!(eng.states().iter().all(|s| s.0 == 8));
    }

    #[test]
    fn run_until_stops_early() {
        let mut eng = max_engine(
            10,
            (0..10).rev().map(|v| v as u64).collect(),
            Box::new(RoundRobinDaemon::new()),
        );
        let stats = eng.run_until(10_000, |e| e.state(9).0 == 9);
        assert!(!stats.terminal || eng.state(9).0 == 9);
        assert_eq!(eng.state(9).0, 9);
    }
}
