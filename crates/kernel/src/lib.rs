//! Execution engine for the *locally shared memory* state model of §2.1.
//!
//! In this model a distributed protocol is a set of guarded actions
//! `<label> :: <guard> → <statement>` per processor. A processor can read its
//! own variables and its neighbours', and write only its own. An execution is
//! a maximal sequence of *steps*; each atomic step has three phases:
//!
//! 1. every processor evaluates its guards,
//! 2. a **daemon** chooses a non-empty subset of the enabled processors,
//! 3. each chosen processor executes one of its enabled actions — all reads
//!    happen against the pre-step configuration, all writes are applied
//!    together (composite atomicity).
//!
//! The crate provides:
//!
//! * the [`Protocol`] trait ([`protocol`]) — how a protocol exposes its
//!   guarded actions over a read-only neighbourhood [`View`],
//! * static action [`footprint`]s — declared read/write sets per action,
//!   the independence relation derived from them (consumed by the
//!   `ssmfp-lint` analyzer and the checker's partial-order reduction),
//!   and the debug-build [`TrackedView`] validation that keeps the
//!   declarations honest,
//! * [`Daemon`] implementations ([`daemon`]) covering the fairness spectrum
//!   of §2.1: synchronous, weakly-fair central round-robin, uniformly random
//!   central and distributed daemons, and adversarial *unfair* daemons,
//! * the [`Engine`] ([`engine`]) which drives steps, applies the composite
//!   write, collects protocol events, and — crucially for reproducing the
//!   paper's complexity claims — counts **rounds** exactly as defined by
//!   Dolev–Israeli–Moran as modified by Bui–Datta–Petit–Villain: a round is
//!   the minimal execution prefix in which every processor enabled at its
//!   start executes an action or is *neutralized*,
//! * two toy protocols ([`toys`]) used to validate the engine itself.

pub mod daemon;
pub mod engine;
pub mod footprint;
pub mod protocol;
pub mod toys;
pub mod trace;

pub use daemon::LocallyCentralDaemon;
pub use daemon::{
    AdversarialDaemon, CentralRandomDaemon, Daemon, DistributedRandomDaemon, RoundRobinDaemon,
    Selection, SynchronousDaemon,
};
pub use engine::{Engine, StepHook, StepOutcome, StepRecord};
pub use footprint::{independent, Access, DestScope, Footprint, Locus, VarClass};
pub use protocol::{Enabled, Protocol, TrackedView, View};
pub use trace::TraceStats;
