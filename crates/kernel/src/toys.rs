//! Tiny reference protocols used to validate the engine semantics (and as
//! documentation of how to implement [`Protocol`]).
//!
//! * [`MaxProtocol`] — silent max-propagation: every processor adopts the
//!   maximum value among itself and its neighbours. Converges to a terminal
//!   configuration in at most `D` synchronous rounds; self-stabilizing.
//! * [`TokenRing`] — Dijkstra's first self-stabilizing K-state token ring
//!   (1974), the protocol that founded the field the paper builds on. Used
//!   to validate round accounting and daemon fairness against a protocol
//!   that never terminates.

use crate::protocol::{Protocol, View};
use ssmfp_topology::NodeId;

/// State of a [`MaxProtocol`] processor: one value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaxState(pub u64);

/// Action of [`MaxProtocol`]: adopt the neighbourhood maximum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdoptMax;

/// Silent max-propagation protocol.
#[derive(Debug, Clone, Default)]
pub struct MaxProtocol;

impl Protocol for MaxProtocol {
    type State = MaxState;
    type Action = AdoptMax;
    type Event = ();

    fn enabled_actions(&self, view: &View<'_, Self::State>, out: &mut Vec<Self::Action>) {
        let my = view.me().0;
        let max = view
            .neighbors()
            .iter()
            .map(|&q| view.state(q).0)
            .max()
            .unwrap_or(my);
        if max > my {
            out.push(AdoptMax);
        }
    }

    fn execute(
        &self,
        view: &View<'_, Self::State>,
        _action: Self::Action,
        _events: &mut Vec<Self::Event>,
    ) -> Self::State {
        let max = view
            .neighbors()
            .iter()
            .map(|&q| view.state(q).0)
            .max()
            .expect("AdoptMax is only enabled with a strictly larger neighbour");
        MaxState(max.max(view.me().0))
    }
}

/// State of a [`TokenRing`] processor: a counter in `0..K`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingState(pub u32);

/// Action of [`TokenRing`]: pass/absorb the token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassToken;

/// Event emitted each time a processor holds (and passes) the token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TokenAt(pub NodeId);

/// Dijkstra's K-state mutual exclusion protocol on a **directed** ring
/// embedded in an undirected cycle: processor `p` reads its predecessor
/// `(p − 1) mod n`. Processor 0 is the distinguished "bottom" machine.
///
/// Guards (with `K ≥ n` states, self-stabilizing):
/// * `p = 0`: enabled iff `S_0 = S_{n−1}`; fires `S_0 := (S_0 + 1) mod K`.
/// * `p ≠ 0`: enabled iff `S_p ≠ S_{p−1}`; fires `S_p := S_{p−1}`.
#[derive(Debug, Clone)]
pub struct TokenRing {
    n: usize,
    k: u32,
}

impl TokenRing {
    /// Creates the protocol for a ring of `n ≥ 2` processors with `K ≥ n`.
    pub fn new(n: usize, k: u32) -> Self {
        assert!(n >= 2, "token ring needs n >= 2");
        assert!(k as usize >= n, "Dijkstra's proof requires K >= n");
        TokenRing { n, k }
    }

    fn predecessor(&self, p: NodeId) -> NodeId {
        (p + self.n - 1) % self.n
    }
}

impl Protocol for TokenRing {
    type State = RingState;
    type Action = PassToken;
    type Event = TokenAt;

    fn enabled_actions(&self, view: &View<'_, Self::State>, out: &mut Vec<Self::Action>) {
        let p = view.me_id();
        let pred = view.state(self.predecessor(p)).0;
        let me = view.me().0;
        let enabled = if p == 0 { me == pred } else { me != pred };
        if enabled {
            out.push(PassToken);
        }
    }

    fn execute(
        &self,
        view: &View<'_, Self::State>,
        _action: Self::Action,
        events: &mut Vec<Self::Event>,
    ) -> Self::State {
        let p = view.me_id();
        events.push(TokenAt(p));
        let pred = view.state(self.predecessor(p)).0;
        if p == 0 {
            RingState((view.me().0 + 1) % self.k)
        } else {
            RingState(pred)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::{CentralRandomDaemon, RoundRobinDaemon};
    use crate::engine::Engine;
    use ssmfp_topology::gen;

    fn ring_engine(states: Vec<u32>, seed: u64) -> Engine<TokenRing> {
        let n = states.len();
        let g = gen::ring(n.max(3));
        let proto = TokenRing::new(n, n as u32 + 1);
        Engine::new(
            g,
            proto,
            Box::new(CentralRandomDaemon::new(seed)),
            states.into_iter().map(RingState).collect(),
        )
    }

    /// Counts processors holding a "privilege" (token) in a configuration.
    fn tokens(states: &[RingState], k: u32) -> usize {
        let n = states.len();
        let _ = k;
        (0..n)
            .filter(|&p| {
                let pred = states[(p + n - 1) % n].0;
                if p == 0 {
                    states[p].0 == pred
                } else {
                    states[p].0 != pred
                }
            })
            .count()
    }

    #[test]
    fn legitimate_configuration_has_one_token() {
        let states: Vec<RingState> = vec![RingState(3); 5];
        assert_eq!(tokens(&states, 6), 1); // only processor 0 is privileged
    }

    #[test]
    fn stabilizes_to_single_token_from_arbitrary_state() {
        // Arbitrary garbage initial configuration.
        let mut eng = ring_engine(vec![4, 1, 3, 0, 2], 77);
        assert!(tokens(eng.states(), 6) >= 1);
        // Run long enough for Dijkstra's protocol to stabilize.
        eng.run(10_000);
        // After stabilization exactly one token circulates forever.
        for _ in 0..200 {
            assert_eq!(tokens(eng.states(), 6), 1);
            eng.step();
        }
    }

    #[test]
    fn never_terminates() {
        let mut eng = ring_engine(vec![0, 0, 0, 0], 5);
        let stats = eng.run(5_000);
        assert!(!stats.terminal);
        assert_eq!(stats.steps, 5_000);
    }

    #[test]
    fn token_events_visit_every_processor() {
        let g = gen::ring(4);
        let proto = TokenRing::new(4, 5);
        let mut eng = Engine::new(
            g,
            proto,
            Box::new(RoundRobinDaemon::new()),
            vec![RingState(0); 4],
        );
        eng.run(500);
        let mut visited = [false; 4];
        for rec in eng.events() {
            visited[rec.event.0] = true;
        }
        assert!(
            visited.iter().all(|&v| v),
            "token must visit all processors"
        );
    }

    #[test]
    fn rounds_advance_under_weakly_fair_daemon() {
        let g = gen::ring(5);
        let proto = TokenRing::new(5, 6);
        let mut eng = Engine::new(
            g,
            proto,
            Box::new(RoundRobinDaemon::new()),
            vec![RingState(0); 5],
        );
        eng.run(1_000);
        assert!(eng.rounds() > 0);
        assert!(eng.rounds() <= eng.steps());
    }
}
