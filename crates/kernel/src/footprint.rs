//! Static read/write **footprints** of guarded actions.
//!
//! In the locally-shared-memory model an action at processor `p` may read
//! `p`'s variables and its neighbours', and write only `p`'s own. A
//! [`Footprint`] declares, per action, *which* variable classes are read
//! and written, at which locus (own state vs. neighbours') and for which
//! destination instances. Protocols declare footprints through
//! [`crate::Protocol::footprint`]; three consumers use them:
//!
//! * the `ssmfp-lint` static analyzer (guard-overlap, race and ownership
//!   lints over the declarations),
//! * the exhaustive checker's partial-order reduction (the
//!   [`independent`] relation derived here),
//! * the engine's debug-build validation: actual reads (via
//!   `TrackedView`) and actual writes (via
//!   [`crate::Protocol::observe_writes`]) are asserted to stay inside the
//!   declaration, so the static model cannot silently drift from the
//!   code.
//!
//! The model is deliberately coarse — a *class* of variables per
//! destination, not individual fields — because that is the granularity
//! at which the paper reasons about rule interference (two rules touch
//! `bufR_p(d)`, not "byte 7 of slot d").

use ssmfp_topology::NodeId;

/// Whose copy of a variable an access touches, relative to the acting
/// processor `p`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Locus {
    /// `p`'s own variable. The only legal locus for writes.
    Me,
    /// The variable at every neighbour of `p` (reads only — a
    /// neighbour-locus write is a state-model violation the lint rejects).
    Neighbors,
}

/// Which destination instances of a per-destination variable an access
/// touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DestScope {
    /// The single instance of destination `d`.
    One(NodeId),
    /// Every destination instance (e.g. the composed protocol's priority
    /// guard reads all routing entries).
    All,
    /// The variable is not per-destination (`per_dest == false` classes
    /// such as `request_p`).
    Global,
}

impl DestScope {
    /// Whether two scopes can touch a common instance.
    #[inline]
    pub fn overlaps(self, other: DestScope) -> bool {
        match (self, other) {
            (DestScope::One(a), DestScope::One(b)) => a == b,
            _ => true,
        }
    }
}

/// A class of shared variables (e.g. "the reception buffers `bufR`"),
/// tagged with the algorithm layer that owns (may write) it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarClass {
    /// Class name, e.g. `"bufR"`.
    pub name: &'static str,
    /// Owning layer, e.g. `"SSMFP"` or `"A"`. The lint rejects an action
    /// of one layer writing a class owned by another (the paper's
    /// priority composition forbids it).
    pub owner: &'static str,
    /// Whether the class has one instance per destination.
    pub per_dest: bool,
}

/// One access: a variable class at a locus, for some destination scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Access {
    /// The variable class touched.
    pub var: VarClass,
    /// Whose copy.
    pub locus: Locus,
    /// Which destination instances.
    pub dest: DestScope,
}

impl Access {
    /// Read/write of `var`'s instance `d` on the acting processor.
    pub const fn me(var: VarClass, d: NodeId) -> Self {
        Access {
            var,
            locus: Locus::Me,
            dest: DestScope::One(d),
        }
    }

    /// Access to a non-per-destination variable on the acting processor.
    pub const fn me_global(var: VarClass) -> Self {
        Access {
            var,
            locus: Locus::Me,
            dest: DestScope::Global,
        }
    }

    /// Read of `var`'s instance `d` on every neighbour.
    pub const fn neighbors(var: VarClass, d: NodeId) -> Self {
        Access {
            var,
            locus: Locus::Neighbors,
            dest: DestScope::One(d),
        }
    }

    /// Read of every instance of `var` on every neighbour.
    pub const fn neighbors_all(var: VarClass) -> Self {
        Access {
            var,
            locus: Locus::Neighbors,
            dest: DestScope::All,
        }
    }

    /// Read of every instance of `var` on the acting processor.
    pub const fn me_all(var: VarClass) -> Self {
        Access {
            var,
            locus: Locus::Me,
            dest: DestScope::All,
        }
    }
}

/// The declared read/write footprint of one action.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Footprint {
    /// Variable instances the guard and statement may read.
    pub reads: Vec<Access>,
    /// Variable instances the statement may write (all must be
    /// [`Locus::Me`]).
    pub writes: Vec<Access>,
    /// True for the conservative default: the action may touch anything.
    /// Opaque footprints conflict with everything and are skipped by the
    /// dynamic validator.
    pub opaque: bool,
}

impl Footprint {
    /// An explicit footprint.
    pub fn new(reads: Vec<Access>, writes: Vec<Access>) -> Self {
        Footprint {
            reads,
            writes,
            opaque: false,
        }
    }

    /// The conservative "touches anything" footprint ([`crate::Protocol`]'s
    /// default): never independent of anything, never validated.
    pub fn opaque() -> Self {
        Footprint {
            reads: Vec::new(),
            writes: Vec::new(),
            opaque: true,
        }
    }
}

/// Whether an access by `p` and an access by `q` can touch a common
/// variable instance (same class, overlapping destination scope, and a
/// common processor once the loci are materialized over the neighbour
/// sets).
fn cells_overlap(
    a: &Access,
    p: NodeId,
    p_nbrs: &[NodeId],
    b: &Access,
    q: NodeId,
    q_nbrs: &[NodeId],
) -> bool {
    if a.var != b.var || !a.dest.overlaps(b.dest) {
        return false;
    }
    match (a.locus, b.locus) {
        (Locus::Me, Locus::Me) => p == q,
        (Locus::Me, Locus::Neighbors) => q_nbrs.contains(&p),
        (Locus::Neighbors, Locus::Me) => p_nbrs.contains(&q),
        (Locus::Neighbors, Locus::Neighbors) => p_nbrs.iter().any(|x| q_nbrs.contains(x)),
    }
}

/// Whether some write of `fa` (acting at `p`) touches an instance that
/// `accesses` of the action at `q` also touch.
fn writes_hit(
    fa: &Footprint,
    p: NodeId,
    p_nbrs: &[NodeId],
    accesses: &[Access],
    q: NodeId,
    q_nbrs: &[NodeId],
) -> bool {
    fa.writes.iter().any(|w| {
        accesses
            .iter()
            .any(|r| cells_overlap(w, p, p_nbrs, r, q, q_nbrs))
    })
}

/// The derived **independence** relation: action `a` at `p` and action
/// `b` at `q` are independent iff they act at distinct processors and
/// neither's writes touch an instance the other reads or writes. For
/// independent actions, executing one neither enables, disables, nor
/// changes the effect of the other — the commutation property
/// partial-order reduction needs.
pub fn independent(
    fa: &Footprint,
    p: NodeId,
    p_nbrs: &[NodeId],
    fb: &Footprint,
    q: NodeId,
    q_nbrs: &[NodeId],
) -> bool {
    if p == q || fa.opaque || fb.opaque {
        return false;
    }
    !writes_hit(fa, p, p_nbrs, &fb.reads, q, q_nbrs)
        && !writes_hit(fa, p, p_nbrs, &fb.writes, q, q_nbrs)
        && !writes_hit(fb, q, q_nbrs, &fa.reads, p, p_nbrs)
        && !writes_hit(fb, q, q_nbrs, &fa.writes, p, p_nbrs)
}

/// Whether a declared access covers an observed one (same class and
/// locus, declaration's destination scope at least as wide).
fn declared_covers(decl: &Access, obs: &Access) -> bool {
    decl.var == obs.var
        && decl.locus == obs.locus
        && match (decl.dest, obs.dest) {
            (DestScope::All, _) => true,
            (a, b) => a == b,
        }
}

/// Checks that every *processor* actually read (as recorded by a
/// `TrackedView`) is explicable by the declared read set: the acting
/// processor is always allowed; a neighbour read requires some
/// [`Locus::Neighbors`] access in the declaration. Returns the offending
/// processor on failure.
///
/// (Reads are tracked at processor granularity — a `View` hands out whole
/// neighbour states, so which *field* was read is not observable. Field
/// granularity is validated on the write side, where pre/post states can
/// be diffed.)
pub fn check_reads_within(
    observed_processors: &[NodeId],
    declared: &Footprint,
    p: NodeId,
    neighbors: &[NodeId],
) -> Result<(), NodeId> {
    if declared.opaque {
        return Ok(());
    }
    let reads_neighbors = declared.reads.iter().any(|a| a.locus == Locus::Neighbors);
    for &r in observed_processors {
        let ok = r == p || (reads_neighbors && neighbors.contains(&r));
        if !ok {
            return Err(r);
        }
    }
    Ok(())
}

/// Checks that every observed write access (from
/// [`crate::Protocol::observe_writes`]) is covered by the declaration.
/// Returns the first uncovered access on failure.
pub fn check_writes_within(observed: &[Access], declared: &Footprint) -> Result<(), Access> {
    if declared.opaque {
        return Ok(());
    }
    for obs in observed {
        if !declared.writes.iter().any(|d| declared_covers(d, obs)) {
            return Err(*obs);
        }
    }
    Ok(())
}

/// Panicking form of [`check_reads_within`] (the engine's debug hook).
pub fn assert_reads_within(
    observed_processors: &[NodeId],
    declared: &Footprint,
    p: NodeId,
    neighbors: &[NodeId],
    describe: &str,
) {
    if let Err(r) = check_reads_within(observed_processors, declared, p, neighbors) {
        panic!(
            "footprint violation: action {describe} at processor {p} read processor {r}, \
             outside its declared read footprint {:?}",
            declared.reads
        );
    }
}

/// Panicking form of [`check_writes_within`] (the engine's debug hook).
pub fn assert_writes_within(observed: &[Access], declared: &Footprint, p: NodeId, describe: &str) {
    if let Err(acc) = check_writes_within(observed, declared) {
        panic!(
            "footprint violation: action {describe} at processor {p} wrote {acc:?}, \
             outside its declared write footprint {:?}",
            declared.writes
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const X: VarClass = VarClass {
        name: "x",
        owner: "T",
        per_dest: true,
    };
    const Y: VarClass = VarClass {
        name: "y",
        owner: "T",
        per_dest: false,
    };

    fn fp(reads: Vec<Access>, writes: Vec<Access>) -> Footprint {
        Footprint::new(reads, writes)
    }

    #[test]
    fn same_processor_is_never_independent() {
        let f = fp(vec![Access::me(X, 0)], vec![Access::me(X, 0)]);
        assert!(!independent(&f, 1, &[0, 2], &f, 1, &[0, 2]));
    }

    #[test]
    fn non_adjacent_me_writes_are_independent() {
        // Writes are Me-locus; with disjoint neighbourhood overlap the
        // cells cannot meet even though both read their neighbours.
        let f = fp(
            vec![Access::me(X, 0), Access::neighbors(X, 0)],
            vec![Access::me(X, 0)],
        );
        assert!(independent(&f, 0, &[1], &f, 2, &[3]));
    }

    #[test]
    fn adjacent_same_dest_conflicts_through_neighbor_read() {
        let f = fp(
            vec![Access::me(X, 0), Access::neighbors(X, 0)],
            vec![Access::me(X, 0)],
        );
        // 0 and 1 adjacent: 1's neighbour read of X(0) sees 0's write.
        assert!(!independent(&f, 0, &[1], &f, 1, &[0]));
    }

    #[test]
    fn adjacent_different_dest_is_independent() {
        let fa = fp(
            vec![Access::me(X, 0), Access::neighbors(X, 0)],
            vec![Access::me(X, 0)],
        );
        let fb = fp(
            vec![Access::me(X, 1), Access::neighbors(X, 1)],
            vec![Access::me(X, 1)],
        );
        assert!(independent(&fa, 0, &[1], &fb, 1, &[0]));
    }

    #[test]
    fn all_scope_overlaps_every_instance() {
        let fa = fp(vec![], vec![Access::me(X, 3)]);
        let fb = fp(vec![Access::neighbors_all(X)], vec![Access::me_global(Y)]);
        assert!(!independent(&fa, 0, &[1], &fb, 1, &[0]));
    }

    #[test]
    fn opaque_conflicts_with_everything() {
        let f = fp(vec![], vec![]);
        assert!(!independent(&Footprint::opaque(), 0, &[], &f, 5, &[]));
    }

    #[test]
    fn read_check_allows_self_and_declared_neighbors() {
        let f = fp(vec![Access::me(X, 0), Access::neighbors(X, 0)], vec![]);
        assert!(check_reads_within(&[2, 1, 3], &f, 2, &[1, 3]).is_ok());
        // 4 is not a neighbour of 2.
        assert_eq!(check_reads_within(&[4], &f, 2, &[1, 3]), Err(4));
        // No Neighbors access declared: neighbour reads are violations.
        let own_only = fp(vec![Access::me(X, 0)], vec![]);
        assert_eq!(check_reads_within(&[1], &own_only, 2, &[1, 3]), Err(1));
    }

    #[test]
    fn write_check_requires_coverage() {
        let f = fp(vec![], vec![Access::me(X, 0), Access::me_global(Y)]);
        assert!(check_writes_within(&[Access::me(X, 0)], &f).is_ok());
        assert!(check_writes_within(&[Access::me_global(Y)], &f).is_ok());
        assert_eq!(
            check_writes_within(&[Access::me(X, 1)], &f),
            Err(Access::me(X, 1))
        );
        // An All-scope declaration covers any instance.
        let wide = fp(vec![], vec![Access::me_all(X)]);
        assert!(check_writes_within(&[Access::me(X, 7)], &wide).is_ok());
    }

    #[test]
    fn opaque_skips_validation() {
        let opaque = Footprint::opaque();
        assert!(check_reads_within(&[9], &opaque, 0, &[]).is_ok());
        assert!(check_writes_within(&[Access::me(X, 0)], &opaque).is_ok());
    }
}
