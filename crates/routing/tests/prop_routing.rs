//! Property tests for the routing algorithm `A`: self-stabilization from
//! arbitrary states on random topologies under every daemon, silence ⇔
//! correctness, and corruption-domain discipline.

use proptest::prelude::*;
use ssmfp_kernel::{
    CentralRandomDaemon, Daemon, DistributedRandomDaemon, Engine, RoundRobinDaemon,
    SynchronousDaemon,
};
use ssmfp_routing::{
    corruption, routing_is_correct, CorruptionKind, RoutingProtocol, RoutingState,
};
use ssmfp_topology::{gen, Graph};

fn arb_graph() -> impl Strategy<Value = Graph> {
    prop_oneof![
        (2usize..10).prop_map(gen::line),
        (3usize..10).prop_map(gen::ring),
        (3usize..10).prop_map(gen::star),
        ((4usize..12), (0usize..8), any::<u64>())
            .prop_map(|(n, e, s)| gen::random_connected(n, e, s)),
    ]
}

fn arb_corruption() -> impl Strategy<Value = CorruptionKind> {
    prop_oneof![
        Just(CorruptionKind::RandomGarbage),
        Just(CorruptionKind::ParentCycles),
        Just(CorruptionKind::AntiDistance),
        Just(CorruptionKind::AllZero),
    ]
}

fn daemons(seed: u64) -> Vec<Box<dyn Daemon>> {
    vec![
        Box::new(SynchronousDaemon),
        Box::new(RoundRobinDaemon::new()),
        Box::new(CentralRandomDaemon::new(seed)),
        Box::new(DistributedRandomDaemon::new(seed, 0.5)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// From any corrupted state, under any daemon: silence in bounded time,
    /// and the silent state is the exact BFS tables.
    #[test]
    fn stabilizes_and_silence_means_correct(
        graph in arb_graph(),
        kind in arb_corruption(),
        seed in any::<u64>(),
    ) {
        for daemon in daemons(seed) {
            let proto: RoutingProtocol<RoutingState> = RoutingProtocol::new(graph.n());
            let states = corruption::corrupt(&graph, kind, seed);
            let mut eng = Engine::new(graph.clone(), proto, daemon, states);
            let stats = eng.run(5_000_000);
            prop_assert!(stats.terminal, "{kind:?} must stabilize");
            prop_assert!(
                routing_is_correct(&graph, eng.states()),
                "{kind:?}: silent but incorrect"
            );
        }
    }

    /// Corruption never leaves the variable domains: distances within
    /// 0..=n, parents within the link labels.
    #[test]
    fn corruption_respects_domains(
        graph in arb_graph(),
        kind in arb_corruption(),
        seed in any::<u64>(),
    ) {
        let n = graph.n();
        let states = corruption::corrupt(&graph, kind, seed);
        for (p, s) in states.iter().enumerate() {
            for d in 0..n {
                prop_assert!(s.dist[d] <= n as u32);
                let par = s.parent[d];
                prop_assert!(
                    par == p || par == d || graph.has_edge(p, par),
                    "parent out of link-label domain"
                );
            }
        }
    }

    /// Stabilization is monotone in the sense that re-running from the
    /// converged state does nothing (silence is stable).
    #[test]
    fn converged_state_is_a_fixpoint(graph in arb_graph(), seed in any::<u64>()) {
        let proto: RoutingProtocol<RoutingState> = RoutingProtocol::new(graph.n());
        let states = corruption::corrupt(&graph, CorruptionKind::None, seed);
        let eng = Engine::new(
            graph.clone(),
            proto,
            Box::new(SynchronousDaemon),
            states.clone(),
        );
        prop_assert!(eng.is_terminal());
        prop_assert_eq!(eng.states(), states.as_slice());
    }
}
