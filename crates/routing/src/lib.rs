//! The self-stabilizing silent routing algorithm `A` assumed by the paper.
//!
//! §3.1: *"we assume the existence of a self-stabilizing **silent** algorithm
//! `A` to compute routing tables which runs simultaneously to our message
//! forwarding protocol. Moreover, we assume that `A` has priority over our
//! protocol. … To simplify the presentation, we assume that `A` induces only
//! minimal paths in number of edges."*
//!
//! The paper cites Huang–Chen-style BFS constructions; we implement the
//! canonical **min + 1 distance-vector BFS** per destination:
//!
//! * every processor `p` keeps, for every destination `d`, a bounded distance
//!   estimate `dist_p(d) ∈ {0, …, n}` and a parent pointer
//!   `parent_p(d) ∈ N_p`;
//! * the destination corrects itself to `dist_d(d) = 0`;
//! * any other processor corrects itself to
//!   `dist_p(d) = min(min_{q∈N_p} dist_q(d) + 1, n)` with the parent being
//!   the **smallest** neighbour identity attaining the minimum.
//!
//! This protocol is silent (no guard is enabled once every estimate is
//! exact), self-stabilizing under the unfair daemon, stabilizes in `O(n)`
//! rounds (`O(D)` from clean states), and its converged parents coincide with
//! [`ssmfp_topology::BfsTree`]'s smallest-identity shortest-path trees — the
//! trees `T_d` that the buffer graphs of Figures 1 and 2 are built on.
//!
//! The crate also provides [`corruption`] — adversarial initial routing
//! tables (random garbage, parent cycles, anti-correct tables) — since the
//! whole point of snap-stabilization is to survive them.

pub mod convergence;
pub mod corruption;
pub mod footprint;
pub mod protocol;
pub mod tables;

pub use corruption::CorruptionKind;
pub use protocol::{HasRouting, RoutingAction, RoutingProtocol, RoutingState};
pub use tables::{next_hop, routing_is_correct, trace_route, RouteOutcome};
