//! Reading routing tables: the `nextHop_p(d)` interface SSMFP consumes, the
//! global correctness predicate, and route tracing diagnostics.

use crate::protocol::RoutingState;
use ssmfp_topology::{AllPairs, Graph, NodeId};

/// `nextHop_p(d)`: the neighbour `p` forwards messages of destination `d`
/// to, as currently recorded in `p`'s (possibly corrupted) table.
#[inline]
pub fn next_hop(states: &[RoutingState], p: NodeId, d: NodeId) -> NodeId {
    states[p].parent[d]
}

/// Whether the tables are *correct* in the paper's sense: every `dist_p(d)`
/// equals the true shortest-path distance and every parent is a neighbour
/// one step closer to `d` (so every route is minimal in edges).
pub fn routing_is_correct(graph: &Graph, states: &[RoutingState]) -> bool {
    let ap = AllPairs::new(graph);
    for (p, state) in states.iter().enumerate().take(graph.n()) {
        for d in 0..graph.n() {
            if state.dist[d] != ap.dist(p, d) {
                return false;
            }
            if p != d {
                let par = state.parent[d];
                if !graph.has_edge(p, par) || ap.dist(par, d) + 1 != ap.dist(p, d) {
                    return false;
                }
            }
        }
    }
    true
}

/// Result of following parent pointers from a source toward a destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteOutcome {
    /// The route reaches the destination in `hops` hops.
    Reaches {
        /// Number of hops taken.
        hops: usize,
    },
    /// The route revisits a processor without reaching the destination —
    /// a routing **loop** (the Figure 3 `a ↔ c` situation).
    Loops {
        /// Processor at which the cycle closes.
        at: NodeId,
    },
    /// A parent pointer leaves the neighbour relation (cannot happen for
    /// states produced by this crate, but tolerated for diagnostics).
    Escapes {
        /// Processor holding the invalid pointer.
        at: NodeId,
    },
}

/// Follows `nextHop` pointers from `src` toward `dst` for at most `n` hops.
pub fn trace_route(
    graph: &Graph,
    states: &[RoutingState],
    src: NodeId,
    dst: NodeId,
) -> RouteOutcome {
    let n = graph.n();
    let mut visited = vec![false; n];
    let mut cur = src;
    let mut hops = 0;
    loop {
        if cur == dst {
            return RouteOutcome::Reaches { hops };
        }
        if visited[cur] {
            return RouteOutcome::Loops { at: cur };
        }
        visited[cur] = true;
        let nxt = next_hop(states, cur, dst);
        if !graph.has_edge(cur, nxt) {
            return RouteOutcome::Escapes { at: cur };
        }
        cur = nxt;
        hops += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corruption::{corrupt, CorruptionKind};
    use ssmfp_topology::gen;

    #[test]
    fn correct_tables_reach_in_dist_hops() {
        let g = gen::grid(3, 4);
        let states = corrupt(&g, CorruptionKind::None, 0);
        let ap = AllPairs::new(&g);
        for p in 0..g.n() {
            for d in 0..g.n() {
                assert_eq!(
                    trace_route(&g, &states, p, d),
                    RouteOutcome::Reaches {
                        hops: ap.dist(p, d) as usize
                    }
                );
            }
        }
    }

    #[test]
    fn garbage_tables_can_loop() {
        let g = gen::ring(10);
        let mut looped = false;
        for seed in 0..20 {
            let states = corrupt(&g, CorruptionKind::RandomGarbage, seed);
            for p in 0..g.n() {
                for d in 0..g.n() {
                    if matches!(trace_route(&g, &states, p, d), RouteOutcome::Loops { .. }) {
                        looped = true;
                    }
                }
            }
        }
        assert!(
            looped,
            "random garbage should produce at least one routing loop"
        );
    }

    #[test]
    fn correctness_predicate_detects_wrong_distance() {
        let g = gen::line(4);
        let mut states = corrupt(&g, CorruptionKind::None, 0);
        assert!(routing_is_correct(&g, &states));
        states[0].dist[3] = 1; // lie
        assert!(!routing_is_correct(&g, &states));
    }

    #[test]
    fn correctness_predicate_detects_wrong_parent() {
        let g = gen::ring(6);
        let mut states = corrupt(&g, CorruptionKind::None, 0);
        // Point node 1's route to destination 2 the long way round.
        states[1].parent[2] = 0;
        assert!(!routing_is_correct(&g, &states));
    }

    #[test]
    fn next_hop_reads_parent() {
        let g = gen::line(3);
        let states = corrupt(&g, CorruptionKind::None, 0);
        assert_eq!(next_hop(&states, 0, 2), 1);
        assert_eq!(next_hop(&states, 1, 2), 2);
    }
}
