//! The min+1 BFS routing protocol as a kernel [`Protocol`].
//!
//! The protocol is generic over the processor state `S`: any state that
//! embeds a [`RoutingState`] (via [`HasRouting`]) can run it. This is how
//! the paper's composition works — SSMFP's node state embeds the routing
//! variables, and the composed protocol gives the routing actions priority.

use ssmfp_kernel::{Protocol, View};
use ssmfp_topology::{BfsTree, Graph, NodeId};
use std::marker::PhantomData;

/// Access to the routing variables embedded in a larger processor state.
pub trait HasRouting {
    /// Read the routing variables.
    fn routing(&self) -> &RoutingState;
    /// Write the routing variables.
    fn routing_mut(&mut self) -> &mut RoutingState;
}

impl HasRouting for RoutingState {
    fn routing(&self) -> &RoutingState {
        self
    }
    fn routing_mut(&mut self) -> &mut RoutingState {
        self
    }
}

/// Routing variables of one processor: per-destination bounded distance
/// estimates and parent pointers. Domains are part of the model — a transient
/// fault can set any value *within the domain* (`dist ∈ {0..n}`, `parent` a
/// link label of the processor), which is exactly what the corruption
/// generators produce.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RoutingState {
    /// `dist[d]`: estimated distance to destination `d`, capped at `n`.
    pub dist: Vec<u32>,
    /// `parent[d]`: the neighbour this processor would forward a message of
    /// destination `d` to (the routing table entry read by `nextHop_p(d)`).
    /// For `p = d` the entry is unused; it is normalized to `d` itself.
    pub parent: Vec<NodeId>,
}

impl RoutingState {
    /// The canonical *converged* state of processor `p`: exact distances and
    /// smallest-identity shortest-path parents.
    pub fn converged(graph: &Graph, trees: &[BfsTree], p: NodeId) -> Self {
        let n = graph.n();
        let mut dist = Vec::with_capacity(n);
        let mut parent = Vec::with_capacity(n);
        for (d, tree) in trees.iter().enumerate().take(n) {
            dist.push(tree.depth(p));
            parent.push(if p == d {
                d
            } else {
                tree.parent(p).expect("non-root has a parent")
            });
        }
        RoutingState { dist, parent }
    }
}

/// Action of the routing protocol: correct the table entry for one
/// destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoutingAction {
    /// Which destination's entry is corrected.
    pub dest: NodeId,
}

/// The self-stabilizing silent min+1 BFS routing protocol `A`, generic over
/// any processor state embedding the routing variables.
///
/// One guarded action per destination `d`:
///
/// ```text
/// C(d) :: (dist_p(d), parent_p(d)) ≠ target_p(d)  →  (dist_p(d), parent_p(d)) := target_p(d)
/// ```
///
/// where `target_d(d) = (0, d)` and for `p ≠ d`,
/// `target_p(d) = (min(1 + min_q dist_q(d), n), argmin_q)` with the smallest
/// neighbour identity breaking ties.
#[derive(Debug, Clone)]
pub struct RoutingProtocol<S = RoutingState> {
    n: usize,
    _state: PhantomData<fn(S) -> S>,
}

impl<S: HasRouting> RoutingProtocol<S> {
    /// Creates the protocol for a network of `n` processors.
    pub fn new(n: usize) -> Self {
        RoutingProtocol {
            n,
            _state: PhantomData,
        }
    }

    /// Number of destinations (= processors).
    pub fn n(&self) -> usize {
        self.n
    }

    /// The corrected `(dist, parent)` pair for destination `dest` at the
    /// viewing processor.
    pub fn target(&self, view: &View<'_, S>, dest: NodeId) -> (u32, NodeId) {
        let p = view.me_id();
        if p == dest {
            return (0, dest);
        }
        // min over neighbours of (dist_q + 1), capped at n; smallest
        // neighbour identity attains the minimum (neighbours are sorted).
        let cap = self.n as u32;
        let mut best = cap;
        let mut parent = view.neighbors()[0];
        for &q in view.neighbors() {
            let cand = view.state(q).routing().dist[dest]
                .min(cap)
                .saturating_add(1)
                .min(cap);
            if cand < best {
                best = cand;
                parent = q;
            }
        }
        (best, parent)
    }

    /// Appends the enabled correction actions at the viewing processor.
    /// (Also usable by composed protocols that wrap the action type.)
    pub fn enabled_into(&self, view: &View<'_, S>, out: &mut Vec<RoutingAction>) {
        let me = view.me().routing();
        for dest in 0..self.n {
            let (td, tp) = self.target(view, dest);
            if me.dist[dest] != td || me.parent[dest] != tp {
                out.push(RoutingAction { dest });
            }
        }
    }

    /// Applies one correction action to a copy of the viewing processor's
    /// state and returns it.
    pub fn apply(&self, view: &View<'_, S>, action: RoutingAction) -> S
    where
        S: Clone,
    {
        let (td, tp) = self.target(view, action.dest);
        let mut next = view.me().clone();
        let r = next.routing_mut();
        r.dist[action.dest] = td;
        r.parent[action.dest] = tp;
        next
    }
}

impl<S: HasRouting + Clone + std::fmt::Debug> Protocol for RoutingProtocol<S> {
    type State = S;
    type Action = RoutingAction;
    type Event = ();

    fn enabled_actions(&self, view: &View<'_, Self::State>, out: &mut Vec<Self::Action>) {
        self.enabled_into(view, out);
    }

    fn execute(
        &self,
        view: &View<'_, Self::State>,
        action: Self::Action,
        _events: &mut Vec<Self::Event>,
    ) -> Self::State {
        self.apply(view, action)
    }

    fn describe(&self, action: Self::Action) -> String {
        format!("A:correct(d={})", action.dest)
    }

    fn footprint(&self, action: Self::Action) -> ssmfp_kernel::Footprint {
        crate::footprint::routing_footprint(action.dest)
    }

    fn observe_writes(
        &self,
        pre: &Self::State,
        post: &Self::State,
    ) -> Option<Vec<ssmfp_kernel::Access>> {
        let mut out = Vec::new();
        crate::footprint::diff_routing(pre.routing(), post.routing(), &mut out);
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssmfp_kernel::{AdversarialDaemon, CentralRandomDaemon, Engine, SynchronousDaemon};
    use ssmfp_topology::{gen, AllPairs};

    fn converged_states(graph: &Graph) -> Vec<RoutingState> {
        let trees: Vec<BfsTree> = (0..graph.n()).map(|d| BfsTree::new(graph, d)).collect();
        (0..graph.n())
            .map(|p| RoutingState::converged(graph, &trees, p))
            .collect()
    }

    fn garbage_states(graph: &Graph, seed: u64) -> Vec<RoutingState> {
        crate::corruption::corrupt(graph, crate::CorruptionKind::RandomGarbage, seed)
    }

    #[test]
    fn converged_states_are_silent() {
        for g in [gen::line(6), gen::ring(7), gen::star(6), gen::grid(3, 3)] {
            let proto = RoutingProtocol::new(g.n());
            let eng = Engine::new(
                g.clone(),
                proto,
                Box::new(SynchronousDaemon),
                converged_states(&g),
            );
            assert!(eng.is_terminal(), "converged tables must be silent");
        }
    }

    #[test]
    fn stabilizes_from_garbage_synchronous() {
        let g = gen::grid(4, 4);
        let proto = RoutingProtocol::new(g.n());
        let mut eng = Engine::new(
            g.clone(),
            proto,
            Box::new(SynchronousDaemon),
            garbage_states(&g, 123),
        );
        let stats = eng.run(1_000_000);
        assert!(stats.terminal);
        assert_eq!(eng.states(), converged_states(&g).as_slice());
    }

    #[test]
    fn stabilizes_from_garbage_random_daemon() {
        let g = gen::random_connected(12, 6, 5);
        let proto = RoutingProtocol::new(g.n());
        let mut eng = Engine::new(
            g.clone(),
            proto,
            Box::new(CentralRandomDaemon::new(17)),
            garbage_states(&g, 9),
        );
        let stats = eng.run(2_000_000);
        assert!(stats.terminal);
        assert_eq!(eng.states(), converged_states(&g).as_slice());
    }

    #[test]
    fn stabilizes_under_unfair_daemon() {
        // Self-stabilization of min+1 BFS holds under the unfair daemon: the
        // adversary may starve victims only while someone else is enabled,
        // and silence forces eventual victim turns.
        let g = gen::ring(8);
        let proto = RoutingProtocol::new(g.n());
        let mut eng = Engine::new(
            g.clone(),
            proto,
            Box::new(AdversarialDaemon::new(3, vec![0, 1])),
            garbage_states(&g, 31),
        );
        let stats = eng.run(2_000_000);
        assert!(stats.terminal);
        assert_eq!(eng.states(), converged_states(&g).as_slice());
    }

    #[test]
    fn converged_distances_are_exact() {
        let g = gen::random_connected(15, 10, 2);
        let ap = AllPairs::new(&g);
        let states = converged_states(&g);
        for (p, state) in states.iter().enumerate() {
            for d in 0..g.n() {
                assert_eq!(state.dist[d], ap.dist(p, d));
            }
        }
    }

    #[test]
    fn stabilization_rounds_scale_with_diameter_from_clean() {
        // From the all-n "clean" overestimate, synchronous stabilization of
        // a *single* destination takes O(D) rounds; with all n destination
        // instances multiplexed one action per step, waves for different
        // destinations serialize at each processor, giving O(n + D) = O(n)
        // rounds on a line — still linear, never quadratic.
        for n in [4usize, 8, 16] {
            let g = gen::line(n);
            let proto = RoutingProtocol::new(n);
            let clean: Vec<RoutingState> = (0..n)
                .map(|p| RoutingState {
                    dist: vec![n as u32; n],
                    parent: vec![g.neighbors(p)[0]; n],
                })
                .collect();
            let mut eng = Engine::new(g.clone(), proto, Box::new(SynchronousDaemon), clean);
            let stats = eng.run(1_000_000);
            assert!(stats.terminal);
            assert!(
                eng.rounds() <= 2 * (n as u64) + 2,
                "line of {n}: rounds {} not linear",
                eng.rounds()
            );
        }
    }

    #[test]
    fn describe_names_rule() {
        let proto: RoutingProtocol = RoutingProtocol::new(4);
        assert_eq!(proto.describe(RoutingAction { dest: 2 }), "A:correct(d=2)");
    }
}
