//! Adversarial initial routing tables.
//!
//! Snap-stabilization quantifies over *every* initial configuration, so the
//! experiments must start from the nastiest tables the variable domains
//! allow: distances are any value in `{0..n}` and parents any *link label*
//! (the `parent_p(d)` variable is a port of `p`, so even a fault cannot make
//! it point at a non-neighbour — but it can absolutely create routing
//! **cycles**, the failure mode Figure 3 illustrates between `a` and `c`).

use crate::protocol::RoutingState;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use ssmfp_topology::{BfsTree, Graph, NodeId};

/// Families of adversarial initial routing tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptionKind {
    /// Uniformly random values over the variable domains.
    RandomGarbage,
    /// Correct distances but parent pointers chosen to form cycles wherever
    /// the topology allows (each non-destination points to its *largest*
    /// neighbour, which pairs of adjacent local maxima turn into 2-cycles).
    ParentCycles,
    /// Anti-correct distances: `n − true distance` (maximally wrong ordering)
    /// with random parents.
    AntiDistance,
    /// All distances zero: every processor believes it *is* every
    /// destination's neighbourhood minimum — the min+1 rule must rebuild
    /// everything from scratch.
    AllZero,
    /// The correct converged tables (no corruption; baseline control).
    None,
}

impl CorruptionKind {
    /// All adversarial kinds (excludes `None`), for sweep loops.
    pub const ADVERSARIAL: [CorruptionKind; 4] = [
        CorruptionKind::RandomGarbage,
        CorruptionKind::ParentCycles,
        CorruptionKind::AntiDistance,
        CorruptionKind::AllZero,
    ];

    /// Short label for report tables.
    pub fn label(self) -> &'static str {
        match self {
            CorruptionKind::RandomGarbage => "garbage",
            CorruptionKind::ParentCycles => "cycles",
            CorruptionKind::AntiDistance => "anti-dist",
            CorruptionKind::AllZero => "all-zero",
            CorruptionKind::None => "correct",
        }
    }
}

/// Builds per-processor routing states corrupted according to `kind`.
/// Deterministic in `(graph, kind, seed)`.
pub fn corrupt(graph: &Graph, kind: CorruptionKind, seed: u64) -> Vec<RoutingState> {
    let n = graph.n();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let trees: Vec<BfsTree> = (0..n).map(|d| BfsTree::new(graph, d)).collect();
    (0..n)
        .map(|p| {
            let neighbors = graph.neighbors(p);
            let random_parent = |rng: &mut ChaCha8Rng| -> NodeId {
                if neighbors.is_empty() {
                    p
                } else {
                    neighbors[rng.gen_range(0..neighbors.len())]
                }
            };
            match kind {
                CorruptionKind::RandomGarbage => RoutingState {
                    dist: (0..n).map(|_| rng.gen_range(0..=n as u32)).collect(),
                    parent: (0..n).map(|_| random_parent(&mut rng)).collect(),
                },
                CorruptionKind::ParentCycles => RoutingState {
                    dist: (0..n).map(|d| trees[d].depth(p)).collect(),
                    parent: (0..n)
                        .map(|d| {
                            if p == d || neighbors.is_empty() {
                                d
                            } else {
                                *neighbors.last().expect("non-empty")
                            }
                        })
                        .collect(),
                },
                CorruptionKind::AntiDistance => RoutingState {
                    dist: (0..n)
                        .map(|d| (n as u32).saturating_sub(trees[d].depth(p)))
                        .collect(),
                    parent: (0..n).map(|_| random_parent(&mut rng)).collect(),
                },
                CorruptionKind::AllZero => RoutingState {
                    dist: vec![0; n],
                    parent: (0..n).map(|_| random_parent(&mut rng)).collect(),
                },
                CorruptionKind::None => RoutingState::converged(graph, &trees, p),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::{routing_is_correct, trace_route, RouteOutcome};
    use ssmfp_topology::gen;

    #[test]
    fn none_is_correct() {
        let g = gen::grid(3, 3);
        let states = corrupt(&g, CorruptionKind::None, 0);
        assert!(routing_is_correct(&g, &states));
    }

    #[test]
    fn adversarial_kinds_are_incorrect() {
        let g = gen::ring(8);
        for kind in CorruptionKind::ADVERSARIAL {
            let states = corrupt(&g, kind, 1);
            assert!(
                !routing_is_correct(&g, &states),
                "{kind:?} should corrupt the tables"
            );
        }
    }

    #[test]
    fn corruption_is_deterministic() {
        let g = gen::random_connected(10, 5, 4);
        for kind in CorruptionKind::ADVERSARIAL {
            assert_eq!(corrupt(&g, kind, 7), corrupt(&g, kind, 7));
        }
    }

    #[test]
    fn parents_stay_within_link_labels() {
        let g = gen::random_connected(12, 8, 2);
        for kind in CorruptionKind::ADVERSARIAL {
            let states = corrupt(&g, kind, 3);
            for (p, state) in states.iter().enumerate() {
                for d in 0..g.n() {
                    let par = state.parent[d];
                    assert!(
                        par == p || par == d || g.has_edge(p, par),
                        "{kind:?}: parent_p(d) must be a link label (p={p}, d={d}, par={par})"
                    );
                }
            }
        }
    }

    #[test]
    fn parent_cycles_create_routing_loops() {
        // On a line, pointing every node at its largest neighbour sends
        // everything toward node n−1, so routes to destination 0 loop or
        // dead-end away from 0.
        let g = gen::line(6);
        let states = corrupt(&g, CorruptionKind::ParentCycles, 0);
        let outcome = trace_route(&g, &states, 2, 0);
        assert_ne!(
            outcome,
            RouteOutcome::Reaches { hops: 2 },
            "corrupted route should not be the shortest path"
        );
    }
}
