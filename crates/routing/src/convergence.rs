//! Measuring `R_A` — the stabilization time of the routing algorithm `A`.
//!
//! Every `max(R_A, ·)` bound of the paper's Propositions 5–7 hides the
//! routing algorithm's convergence time. These helpers run `A` alone (no
//! forwarding layer) from a corrupted start under a chosen daemon and
//! report the number of *rounds* until silence — the quantity the bounds
//! consume.

use crate::corruption::{corrupt, CorruptionKind};
use crate::protocol::{RoutingProtocol, RoutingState};
use crate::tables::routing_is_correct;
use ssmfp_kernel::{Daemon, Engine};
use ssmfp_topology::Graph;

/// Result of a convergence measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Convergence {
    /// Rounds until `A` is silent (the measured `R_A`).
    pub rounds: u64,
    /// Steps until silence.
    pub steps: u64,
    /// Whether the converged tables are correct (must always hold).
    pub correct: bool,
}

/// Runs `A` alone from a corrupted start until silence and measures `R_A`.
///
/// Panics if the protocol fails to reach silence within a very generous
/// step budget (it cannot, being self-stabilizing under the unfair daemon).
pub fn measure(
    graph: &Graph,
    kind: CorruptionKind,
    daemon: Box<dyn Daemon>,
    seed: u64,
) -> Convergence {
    let proto: RoutingProtocol<RoutingState> = RoutingProtocol::new(graph.n());
    let states = corrupt(graph, kind, seed);
    let mut eng = Engine::new(graph.clone(), proto, daemon, states);
    let budget = 10_000_000u64.max(graph.n() as u64 * graph.n() as u64 * 1_000);
    let stats = eng.run(budget);
    assert!(
        stats.terminal,
        "A must stabilize (n={}, kind={kind:?})",
        graph.n()
    );
    Convergence {
        rounds: eng.rounds(),
        steps: eng.steps(),
        correct: routing_is_correct(graph, eng.states()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssmfp_kernel::{CentralRandomDaemon, RoundRobinDaemon, SynchronousDaemon};
    use ssmfp_topology::gen;

    #[test]
    fn converged_tables_are_always_correct() {
        for kind in CorruptionKind::ADVERSARIAL {
            let g = gen::grid(3, 3);
            let c = measure(&g, kind, Box::new(CentralRandomDaemon::new(1)), 7);
            assert!(c.correct, "{kind:?}");
            assert!(c.rounds > 0);
        }
    }

    #[test]
    fn already_correct_tables_take_zero_rounds() {
        let g = gen::ring(6);
        let c = measure(&g, CorruptionKind::None, Box::new(SynchronousDaemon), 0);
        assert_eq!(c.steps, 0);
        assert_eq!(c.rounds, 0);
        assert!(c.correct);
    }

    #[test]
    fn synchronous_convergence_is_linear_in_n() {
        // The count-to-cap dynamics bound R_A by O(n) per destination; the
        // multiplexed engine serializes destinations per processor, keeping
        // the total linear with a modest constant.
        for n in [4usize, 8, 12] {
            let g = gen::line(n);
            let c = measure(&g, CorruptionKind::AllZero, Box::new(SynchronousDaemon), 0);
            assert!(
                c.rounds <= 8 * n as u64 + 8,
                "line {n}: R_A = {} not linear",
                c.rounds
            );
        }
    }

    #[test]
    fn round_robin_and_synchronous_agree_on_correctness() {
        let g = gen::random_connected(10, 5, 3);
        for daemon in [
            Box::new(SynchronousDaemon) as Box<dyn Daemon>,
            Box::new(RoundRobinDaemon::new()),
        ] {
            let c = measure(&g, CorruptionKind::RandomGarbage, daemon, 5);
            assert!(c.correct);
        }
    }
}
