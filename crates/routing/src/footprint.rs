//! Footprint declarations for the routing algorithm `A`.
//!
//! `A` owns the routing variables: the distance estimates and parent
//! pointers. Its single rule per destination `d` reads its own entry and
//! every neighbour's distance estimate for `d`, and writes its own entry —
//! nothing else. The composed SSMFP protocol reads (but never writes)
//! these classes; the `ssmfp-lint` ownership analysis enforces exactly
//! that split, which is the paper's priority-composition contract.

use ssmfp_kernel::footprint::{Access, Footprint, VarClass};
use ssmfp_topology::NodeId;

/// The layer tag of the routing algorithm.
pub const LAYER_A: &str = "A";

/// `dist_p(d)`: the bounded distance estimate maintained by `A`.
pub const DIST: VarClass = VarClass {
    name: "dist",
    owner: LAYER_A,
    per_dest: true,
};

/// `parent_p(d)`: the routing-table parent pointer (`nextHop_p(d)` as the
/// forwarding rules read it) maintained by `A`.
pub const PARENT: VarClass = VarClass {
    name: "parent",
    owner: LAYER_A,
    per_dest: true,
};

/// Footprint of the correction rule `C(d)`: guard and statement read
/// `(dist_p(d), parent_p(d))` and every neighbour's `dist_q(d)`; the
/// statement overwrites `p`'s own entry.
pub fn routing_footprint(d: NodeId) -> Footprint {
    Footprint::new(
        vec![
            Access::me(DIST, d),
            Access::me(PARENT, d),
            Access::neighbors(DIST, d),
        ],
        vec![Access::me(DIST, d), Access::me(PARENT, d)],
    )
}

/// Diffs two routing tables into the write accesses that distinguish them
/// (used by `observe_writes` implementations of any state embedding a
/// [`crate::RoutingState`]).
pub fn diff_routing(pre: &crate::RoutingState, post: &crate::RoutingState, out: &mut Vec<Access>) {
    for d in 0..pre.dist.len().max(post.dist.len()) {
        if pre.dist.get(d) != post.dist.get(d) {
            out.push(Access::me(DIST, d));
        }
        if pre.parent.get(d) != post.parent.get(d) {
            out.push(Access::me(PARENT, d));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssmfp_kernel::footprint::{check_writes_within, independent, Locus};

    #[test]
    fn routing_writes_are_local() {
        let fp = routing_footprint(2);
        assert!(fp.writes.iter().all(|w| w.locus == Locus::Me));
    }

    #[test]
    fn different_destinations_commute_even_when_adjacent() {
        let fa = routing_footprint(0);
        let fb = routing_footprint(1);
        assert!(independent(&fa, 0, &[1], &fb, 1, &[0]));
    }

    #[test]
    fn same_destination_interferes_between_neighbors() {
        // q's correction writes dist_q(d), which p's guard reads.
        let fa = routing_footprint(3);
        let fb = routing_footprint(3);
        assert!(!independent(&fa, 0, &[1], &fb, 1, &[0]));
        // Non-adjacent processors cannot see each other's entries.
        assert!(independent(&fa, 0, &[1], &fb, 2, &[1]));
    }

    #[test]
    fn diff_covers_apply() {
        let pre = crate::RoutingState {
            dist: vec![0, 5, 2],
            parent: vec![0, 1, 2],
        };
        let mut post = pre.clone();
        post.dist[1] = 3;
        post.parent[1] = 0;
        let mut obs = Vec::new();
        diff_routing(&pre, &post, &mut obs);
        assert_eq!(obs, vec![Access::me(DIST, 1), Access::me(PARENT, 1)]);
        assert!(check_writes_within(&obs, &routing_footprint(1)).is_ok());
        assert!(check_writes_within(&obs, &routing_footprint(0)).is_err());
    }
}
