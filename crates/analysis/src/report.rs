//! Plain-text report tables and small-sample statistics.

use std::fmt;

/// A titled, column-aligned text table (also exportable as CSV).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Table title (experiment id + claim).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (stringified).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
        self
    }

    /// CSV rendering (headers + rows; fields are comma-escaped by quoting).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Renders the table as a JSON object (`title`, `headers`, `rows` —
    /// all cells as strings, matching the CSV rendering).
    pub fn to_json(&self) -> String {
        let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
        let arr = |cells: &[String]| {
            format!(
                "[{}]",
                cells
                    .iter()
                    .map(|c| format!("\"{}\"", esc(c)))
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        };
        format!(
            "{{\"title\": \"{}\", \"headers\": {}, \"rows\": [{}]}}",
            esc(&self.title),
            arr(&self.headers),
            self.rows
                .iter()
                .map(|r| arr(r))
                .collect::<Vec<_>>()
                .join(", ")
        )
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "## {}", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, c) in cells.iter().enumerate() {
                write!(f, " {:<w$} |", c, w = widths[i])?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{}|", "-".repeat(w + 2))?;
        }
        writeln!(f)?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Summary statistics of a sample of `u64` measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Sample size.
    pub count: usize,
    /// Minimum.
    pub min: u64,
    /// Maximum.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (lower of the two middles for even sizes).
    pub median: u64,
}

impl Stats {
    /// Computes statistics over a sample; `None` for an empty sample.
    pub fn of(sample: &[u64]) -> Option<Stats> {
        if sample.is_empty() {
            return None;
        }
        let mut sorted = sample.to_vec();
        sorted.sort_unstable();
        Some(Stats {
            count: sorted.len(),
            min: sorted[0],
            max: *sorted.last().expect("non-empty"),
            mean: sorted.iter().sum::<u64>() as f64 / sorted.len() as f64,
            median: sorted[(sorted.len() - 1) / 2],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("T", &["a", "long-header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["333".into(), "4".into()]);
        let s = t.to_string();
        assert!(s.contains("## T"));
        assert!(s.contains("| a   | long-header |"));
        assert!(s.contains("| 333 | 4           |"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(vec!["x,y".into(), "q\"z".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"q\"\"z\""));
    }

    #[test]
    fn json_escapes_quotes_and_keeps_shape() {
        let mut t = Table::new("E1 \"claim\"", &["a", "b"]);
        t.row(vec!["1".into(), "x\"y".into()]);
        let j = t.to_json();
        assert!(j.contains("\"title\": \"E1 \\\"claim\\\"\""));
        assert!(j.contains("\"headers\": [\"a\", \"b\"]"));
        assert!(j.contains("\"rows\": [[\"1\", \"x\\\"y\"]]"));
    }

    #[test]
    fn stats_basic() {
        let s = Stats::of(&[3, 1, 4, 1, 5]).unwrap();
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 5);
        assert_eq!(s.median, 3);
        assert!((s.mean - 2.8).abs() < 1e-9);
        assert!(Stats::of(&[]).is_none());
    }
}
