//! Workload helpers shared by the experiments: named topology families and
//! traffic patterns.

use ssmfp_topology::{gen, Graph, GraphMetrics};

/// A named topology instance with its precomputed metrics.
pub struct Topo {
    /// Family label for report rows.
    pub name: String,
    /// The graph.
    pub graph: Graph,
    /// Its metrics (`n`, `Δ`, `D`, distances).
    pub metrics: GraphMetrics,
}

impl Topo {
    /// Wraps a graph with its metrics.
    pub fn new(name: impl Into<String>, graph: Graph) -> Self {
        let metrics = GraphMetrics::new(&graph);
        Topo {
            name: name.into(),
            graph,
            metrics,
        }
    }
}

/// The standard topology suite used across experiments: covers the corners
/// of the `(Δ, D)` plane the bounds are parameterized by.
pub fn standard_suite() -> Vec<Topo> {
    vec![
        Topo::new("line-8", gen::line(8)),
        Topo::new("ring-8", gen::ring(8)),
        Topo::new("star-8", gen::star(8)),
        Topo::new("tree2-15", gen::kary_tree(15, 2)),
        Topo::new("grid-3x3", gen::grid(3, 3)),
        Topo::new("hyper-3", gen::hypercube(3)),
        Topo::new("rand-10", gen::random_connected(10, 6, 42)),
        Topo::new("complete-6", gen::complete(6)),
    ]
}

/// Smaller suite for the more expensive sweeps.
pub fn small_suite() -> Vec<Topo> {
    vec![
        Topo::new("line-6", gen::line(6)),
        Topo::new("ring-6", gen::ring(6)),
        Topo::new("star-6", gen::star(6)),
        Topo::new("grid-2x3", gen::grid(2, 3)),
    ]
}

/// Diameter-scaling family (Δ = 2 fixed): lines of increasing length.
pub fn line_family(sizes: &[usize]) -> Vec<Topo> {
    sizes
        .iter()
        .map(|&n| Topo::new(format!("line-{n}"), gen::line(n)))
        .collect()
}

/// Degree-scaling family (D = 2 fixed): stars of increasing degree.
pub fn star_family(sizes: &[usize]) -> Vec<Topo> {
    sizes
        .iter()
        .map(|&n| Topo::new(format!("star-{n}"), gen::star(n)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_are_nonempty_and_metrics_match() {
        for t in standard_suite().iter().chain(small_suite().iter()) {
            assert_eq!(t.metrics.n(), t.graph.n());
            assert_eq!(t.metrics.max_degree(), t.graph.max_degree());
        }
    }

    #[test]
    fn families_scale_the_right_parameter() {
        let lines = line_family(&[4, 8]);
        assert_eq!(lines[0].metrics.max_degree(), 2);
        assert_eq!(lines[1].metrics.diameter(), 7);
        let stars = star_family(&[4, 8]);
        assert_eq!(stars[0].metrics.max_degree(), 3);
        assert_eq!(stars[1].metrics.max_degree(), 7);
        assert_eq!(stars[1].metrics.diameter(), 2);
    }
}
