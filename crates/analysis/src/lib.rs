//! Experiment harness regenerating every figure and proposition of the
//! paper (the full index lives in `DESIGN.md` §3).
//!
//! Each experiment module exposes a `run(...) -> Table` function producing
//! the rows the paper's claim is checked against; the `ssmfp-experiments`
//! binary prints them all (that output is the source of `EXPERIMENTS.md`).
//!
//! | module | paper artifact |
//! |--------|----------------|
//! | [`experiments::schemes`] | Figures 1 & 2 + §4 cover schemes (E1/E2/E11) |
//! | [`experiments::fig3`] | Figure 3 replay (E3) |
//! | [`experiments::fig4`] | Figure 4 caterpillar census (E4) |
//! | [`experiments::prop4`] | Proposition 4: ≤ 2n invalid deliveries (E5) |
//! | [`experiments::prop5`] | Proposition 5: delivery rounds vs `Δ^D` (E6) |
//! | [`experiments::prop6`] | Proposition 6: delay & waiting time (E7) |
//! | [`experiments::prop7`] | Proposition 7: amortized rounds/delivery (E8) |
//! | [`experiments::overhead`] | §4 "no significant over-cost" (E9) |
//! | [`experiments::corruption`] | baseline vs SSMFP under corruption (E10) |

pub mod experiments;
pub mod parallel;
pub mod report;
pub mod workload;

pub use parallel::run_ordered;
pub use report::{Stats, Table};
