//! Deterministic fan-out for replicate sweeps.
//!
//! The experiment sweeps are embarrassingly parallel — every cell of a
//! table is an independent simulation parameterized by `(topology,
//! corruption, seed)` — but their *output* is a report table whose row
//! order is part of the artifact (EXPERIMENTS.md diffs against it). The
//! runner here mirrors the two-phase discipline of the parallel model
//! checker (`ssmfp-check`): workers claim jobs dynamically off an atomic
//! cursor and compute into index-addressed slots (phase A); the caller
//! receives the results merged back **in job order** (phase B), so the
//! produced table is byte-identical to a single-threaded run for any
//! thread count. Each job's randomness comes from seeds carried *in the
//! job description*, never from worker identity or pickup order.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `f` over `items` on up to `threads` workers and returns the
/// results in item order — identical to
/// `items.iter().enumerate().map(|(i, t)| f(i, t)).collect()` for every
/// thread count. `f` must be a pure function of its arguments (all the
/// experiment runners are: their RNGs are seeded from the job).
pub fn run_ordered<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let mut results: Vec<Option<R>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);
    let cursor = AtomicUsize::new(0);
    let f_ref = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut out: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        out.push((i, f_ref(i, &items[i])));
                    }
                    out
                })
            })
            .collect();
        for handle in handles {
            for (i, r) in handle.join().expect("sweep worker panicked") {
                results[i] = Some(r);
            }
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every job slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_merge_matches_sequential_for_any_thread_count() {
        let items: Vec<u64> = (0..37).collect();
        let seq = run_ordered(&items, 1, |i, &x| (i as u64) * 1000 + x * x);
        for threads in [2, 3, 8, 64] {
            let par = run_ordered(&items, threads, |i, &x| (i as u64) * 1000 + x * x);
            assert_eq!(seq, par, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = vec![];
        assert_eq!(run_ordered(&empty, 4, |_, &x| x), Vec::<u32>::new());
        assert_eq!(run_ordered(&[9u32], 4, |_, &x| x + 1), vec![10]);
    }
}
