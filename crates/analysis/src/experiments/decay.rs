//! **E18** — drain dynamics of the invalid population (the transient the
//! paper's Proposition 4 bounds in aggregate).
//!
//! From the extremal all-buffers-full start, the invalid population can
//! only shrink (no rule creates invalid messages net of copies, and every
//! caterpillar eventually delivers or erases). We sample the population at
//! progress quartiles and report the half-life — how many rounds until
//! half the garbage is gone — giving the *shape* behind Prop 4's count.

use crate::report::Table;
use crate::workload::small_suite;
use ssmfp_core::{DaemonKind, Network, NetworkConfig, NodeState};
use ssmfp_routing::CorruptionKind;

/// Time series of one drain run.
pub struct DecayRun {
    /// Population (occupied buffers) at progress 0, ¼, ½, ¾, 1 of the run.
    pub quartiles: [usize; 5],
    /// Rounds elapsed when the population first halved.
    pub half_life_rounds: u64,
    /// Rounds to full drain.
    pub total_rounds: u64,
    /// Invalid messages delivered in total.
    pub invalid_delivered: u64,
}

/// Runs one extremal drain, sampling the population per pump.
pub fn decay_run(graph: ssmfp_topology::Graph, seed: u64) -> DecayRun {
    let config = NetworkConfig {
        daemon: DaemonKind::CentralRandom { seed },
        corruption: CorruptionKind::RandomGarbage,
        garbage_fill: 1.0,
        seed,
        routing_priority: true,
        choice_strategy: Default::default(),
        seeded_bug: None,
    };
    let mut net = Network::new(graph, config);
    let initial: usize = net.states().iter().map(NodeState::occupied_buffers).sum();
    let mut series: Vec<(u64, usize)> = vec![(0, initial)];
    let mut half_life_rounds = 0;
    loop {
        if let ssmfp_kernel::StepOutcome::Terminal = net.pump() {
            break;
        }
        let pop: usize = net.states().iter().map(NodeState::occupied_buffers).sum();
        series.push((net.rounds(), pop));
        if half_life_rounds == 0 && pop * 2 <= initial {
            half_life_rounds = net.rounds();
        }
        assert!(net.steps() < 50_000_000, "drain must terminate");
    }
    let total_rounds = net.rounds();
    let q = |frac: f64| -> usize {
        let idx = ((series.len() - 1) as f64 * frac) as usize;
        series[idx].1
    };
    DecayRun {
        quartiles: [q(0.0), q(0.25), q(0.5), q(0.75), q(1.0)],
        half_life_rounds,
        total_rounds,
        invalid_delivered: net.ledger().invalid_delivered_count(),
    }
}

/// The E18 table.
pub fn run(seed: u64) -> Table {
    let mut table = Table::new(
        "E18 — invalid-population drain from the extremal start (occupied buffers at progress quartiles)",
        &["topology", "t=0", "t=¼", "t=½", "t=¾", "end", "half-life (rounds)", "total rounds", "invalid delivered"],
    );
    for t in small_suite() {
        let r = decay_run(t.graph.clone(), seed);
        table.row(vec![
            t.name.clone(),
            r.quartiles[0].to_string(),
            r.quartiles[1].to_string(),
            r.quartiles[2].to_string(),
            r.quartiles[3].to_string(),
            r.quartiles[4].to_string(),
            r.half_life_rounds.to_string(),
            r.total_rounds.to_string(),
            r.invalid_delivered.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssmfp_topology::gen;

    #[test]
    fn population_decays_across_quartiles() {
        let r = decay_run(gen::ring(6), 4);
        // R3 copies before R4/R5 erase, so the population may blip up by a
        // few between samples; the quartile trend must still be downward.
        for w in r.quartiles.windows(2) {
            assert!(w[0] + 4 >= w[1], "{:?}", r.quartiles);
        }
        assert_eq!(
            r.quartiles[0],
            2 * 6 * 6,
            "extremal start: all buffers full"
        );
        assert_eq!(r.quartiles[4], 0, "full drain");
        assert!(r.half_life_rounds > 0);
        assert!(r.half_life_rounds <= r.total_rounds);
    }

    #[test]
    fn sweep_rows_all_drain() {
        let table = run(9);
        for row in &table.rows {
            assert_eq!(row[5], "0", "end population must be zero: {row:?}");
        }
    }
}
