//! **E3** — the Figure 3 replay, as a report table.

use crate::report::Table;
use ssmfp_core::api::DaemonKind;
use ssmfp_core::replay::{run_figure3, B};

/// Replays Figure 3 under several daemons and reports the phenomena.
pub fn run(seed: u64) -> Table {
    let mut table = Table::new(
        "E3 — Figure 3 replay: colors prevent merges, invalid delivered ≤ once",
        &[
            "daemon",
            "A priority",
            "m delivered",
            "m'' delivered",
            "invalid@b",
            "coexist",
            "under-cycle",
            "steps",
            "SP violations",
        ],
    );
    let scenarios: Vec<(String, DaemonKind, bool, u64)> = vec![
        ("round-robin".into(), DaemonKind::RoundRobin, true, 200_000),
        (
            "central-random".into(),
            DaemonKind::CentralRandom { seed },
            true,
            400_000,
        ),
        (
            "unfair (b starved)".into(),
            DaemonKind::AdversarialRandomAction {
                seed,
                victims: vec![B],
            },
            false,
            4_000,
        ),
    ];
    for (name, daemon, priority, max_steps) in scenarios {
        // The hazard flags are schedule-dependent; for the unfair scenario
        // sweep a few seeds and report whether any schedule exhibits them
        // (the safety columns must hold on every seed).
        let runs: Vec<_> = match &daemon {
            DaemonKind::AdversarialRandomAction { victims, .. } => (0..10)
                .map(|s| {
                    run_figure3(
                        DaemonKind::AdversarialRandomAction {
                            seed: seed + s,
                            victims: victims.clone(),
                        },
                        priority,
                        max_steps,
                    )
                })
                .collect(),
            _ => vec![run_figure3(daemon, priority, max_steps)],
        };
        let coexist = runs.iter().any(|r| r.same_payload_coexisted);
        let under_cycle = runs.iter().any(|r| r.forwarded_under_cycle);
        let r = &runs[0];
        table.row(vec![
            name,
            priority.to_string(),
            r.m_deliveries.to_string(),
            r.m_prime_valid_deliveries.to_string(),
            runs.iter()
                .map(|r| r.invalid_deliveries_at_b)
                .max()
                .unwrap_or(0)
                .to_string(),
            coexist.to_string(),
            under_cycle.to_string(),
            r.steps.to_string(),
            runs.iter()
                .map(|r| r.violations)
                .max()
                .unwrap_or(0)
                .to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_report_is_clean() {
        let table = run(3);
        assert_eq!(table.rows.len(), 3);
        for row in &table.rows {
            assert_eq!(row[8], "0", "no SP violations in any scenario: {row:?}");
            let invalid: u64 = row[4].parse().unwrap();
            assert!(invalid <= 1);
        }
        // Fair scenarios deliver both valid messages exactly once.
        for row in table.rows.iter().take(2) {
            assert_eq!(row[2], "1");
            assert_eq!(row[3], "1");
        }
    }
}
