//! **E3** — the Figure 3 replay, as a report table.

use crate::parallel::run_ordered;
use crate::report::Table;
use ssmfp_core::api::DaemonKind;
use ssmfp_core::replay::{run_figure3, B};

/// One scenario of the replay table; the unfair scenario is replicated
/// over several adversary seeds (the hazard flags are schedule-dependent
/// and the safety columns must hold on every seed).
struct Scenario {
    name: &'static str,
    priority: bool,
    max_steps: u64,
    replicates: u64,
    unfair: bool,
}

fn daemon_for(sc: &Scenario, seed: u64, replicate: u64) -> DaemonKind {
    if sc.unfair {
        DaemonKind::AdversarialRandomAction {
            seed: seed + replicate,
            victims: vec![B],
        }
    } else if sc.name == "round-robin" {
        DaemonKind::RoundRobin
    } else {
        DaemonKind::CentralRandom { seed }
    }
}

/// Replays Figure 3 under several daemons and reports the phenomena.
pub fn run(seed: u64) -> Table {
    run_with(seed, 1)
}

/// Like [`run`], with the replicate runs fanned out over `threads`
/// workers (deterministic: the table is identical for any count).
pub fn run_with(seed: u64, threads: usize) -> Table {
    let mut table = Table::new(
        "E3 — Figure 3 replay: colors prevent merges, invalid delivered ≤ once",
        &[
            "daemon",
            "A priority",
            "m delivered",
            "m'' delivered",
            "invalid@b",
            "coexist",
            "under-cycle",
            "steps",
            "SP violations",
        ],
    );
    let scenarios = [
        Scenario {
            name: "round-robin",
            priority: true,
            max_steps: 200_000,
            replicates: 1,
            unfair: false,
        },
        Scenario {
            name: "central-random",
            priority: true,
            max_steps: 400_000,
            replicates: 1,
            unfair: false,
        },
        Scenario {
            name: "unfair (b starved)",
            priority: false,
            max_steps: 4_000,
            replicates: 10,
            unfair: true,
        },
    ];
    // Fan every replicate of every scenario out as one job; the ordered
    // merge groups them back per scenario.
    let jobs: Vec<(usize, u64)> = scenarios
        .iter()
        .enumerate()
        .flat_map(|(i, sc)| (0..sc.replicates).map(move |r| (i, r)))
        .collect();
    let results = run_ordered(&jobs, threads, |_, &(i, r)| {
        let sc = &scenarios[i];
        run_figure3(daemon_for(sc, seed, r), sc.priority, sc.max_steps)
    });
    for (i, sc) in scenarios.iter().enumerate() {
        let runs: Vec<_> = jobs
            .iter()
            .zip(results.iter())
            .filter(|((j, _), _)| *j == i)
            .map(|(_, r)| r)
            .collect();
        let coexist = runs.iter().any(|r| r.same_payload_coexisted);
        let under_cycle = runs.iter().any(|r| r.forwarded_under_cycle);
        let r = runs[0];
        table.row(vec![
            sc.name.to_string(),
            sc.priority.to_string(),
            r.m_deliveries.to_string(),
            r.m_prime_valid_deliveries.to_string(),
            runs.iter()
                .map(|r| r.invalid_deliveries_at_b)
                .max()
                .unwrap_or(0)
                .to_string(),
            coexist.to_string(),
            under_cycle.to_string(),
            r.steps.to_string(),
            runs.iter()
                .map(|r| r.violations)
                .max()
                .unwrap_or(0)
                .to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_sweep_is_deterministic() {
        let seq = run_with(3, 1);
        let par = run_with(3, 4);
        assert_eq!(seq.title, par.title);
        assert_eq!(seq.rows, par.rows);
    }

    #[test]
    fn fig3_report_is_clean() {
        let table = run(3);
        assert_eq!(table.rows.len(), 3);
        for row in &table.rows {
            assert_eq!(row[8], "0", "no SP violations in any scenario: {row:?}");
            let invalid: u64 = row[4].parse().unwrap();
            assert!(invalid <= 1);
        }
        // Fair scenarios deliver both valid messages exactly once.
        for row in table.rows.iter().take(2) {
            assert_eq!(row[2], "1");
            assert_eq!(row[3], "1");
        }
    }
}
