//! **E17** — the daemon spectrum of §2.1, quantified: the same adversarial
//! workload under every scheduler the model defines. All fair daemons must
//! satisfy SP; the unfair one may stall liveness (messages stay in flight)
//! but can never break safety. The steps-to-drain column shows what each
//! concurrency model buys.

use crate::report::Table;
use ssmfp_core::{DaemonKind, Network, NetworkConfig};
use ssmfp_kernel::TraceStats;
use ssmfp_routing::CorruptionKind;
use ssmfp_topology::gen;

/// Result of one daemon run.
pub struct DaemonRun {
    /// Whether the run reached quiescence.
    pub quiescent: bool,
    /// Valid messages delivered exactly once.
    pub exactly_once: u64,
    /// Messages sent.
    pub sent: u64,
    /// Steps executed.
    pub steps: u64,
    /// Rounds completed.
    pub rounds: u64,
    /// Jain fairness index of per-processor moves (1.0 = perfectly even).
    pub fairness: f64,
    /// SP violations (safety — must be 0 for every daemon).
    pub violations: u64,
}

/// Runs the standard adversarial workload under one daemon.
pub fn daemon_run(daemon: DaemonKind, seed: u64, budget: u64) -> DaemonRun {
    let graph = gen::random_connected(9, 5, 13);
    let n = graph.n();
    let config = NetworkConfig {
        daemon,
        corruption: CorruptionKind::RandomGarbage,
        garbage_fill: 0.4,
        seed,
        routing_priority: true,
        choice_strategy: Default::default(),
        seeded_bug: None,
    };
    let mut net = Network::new(graph, config);
    net.engine_mut().enable_trace();
    let mut ghosts = Vec::new();
    for s in 0..n {
        ghosts.push(net.send(s, (s + 4) % n, s as u64 % 8));
        ghosts.push(net.send(s, (s + 7) % n, (s + 1) as u64 % 8));
    }
    let quiescent = net.run_to_quiescence(budget);
    let exactly_once = ghosts
        .iter()
        .filter(|g| net.deliveries_of(**g) == 1)
        .count() as u64;
    let fairness = net
        .engine()
        .trace()
        .map(|t| TraceStats::from_trace(t, n).fairness_index())
        .unwrap_or(0.0);
    DaemonRun {
        quiescent,
        exactly_once,
        sent: ghosts.len() as u64,
        steps: net.steps(),
        rounds: net.rounds(),
        fairness,
        violations: net.check_sp().len() as u64,
    }
}

/// The E17 table.
pub fn run(seed: u64) -> Table {
    let mut table = Table::new(
        "E17 — daemon spectrum (random graph n=9, garbage start, 18 messages)",
        &[
            "daemon",
            "fair",
            "exactly-once",
            "steps",
            "rounds",
            "Jain idx",
            "quiescent",
            "SP violations",
        ],
    );
    let daemons: Vec<(&str, bool, DaemonKind)> = vec![
        ("synchronous", true, DaemonKind::Synchronous),
        ("round-robin", true, DaemonKind::RoundRobin),
        ("central random", true, DaemonKind::CentralRandom { seed }),
        (
            "distributed (p=.5)",
            true,
            DaemonKind::DistributedRandom { seed, p_move: 0.5 },
        ),
        ("locally central", true, DaemonKind::LocallyCentral { seed }),
        (
            "unfair (starve 0)",
            false,
            DaemonKind::Adversarial {
                seed,
                victims: vec![0],
            },
        ),
    ];
    for (name, fair, daemon) in daemons {
        let r = daemon_run(daemon, seed, 2_000_000);
        table.row(vec![
            name.to_string(),
            fair.to_string(),
            format!("{}/{}", r.exactly_once, r.sent),
            r.steps.to_string(),
            r.rounds.to_string(),
            format!("{:.3}", r.fairness),
            r.quiescent.to_string(),
            r.violations.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_fair_daemons_satisfy_sp() {
        for daemon in [
            DaemonKind::Synchronous,
            DaemonKind::RoundRobin,
            DaemonKind::CentralRandom { seed: 2 },
            DaemonKind::DistributedRandom {
                seed: 2,
                p_move: 0.5,
            },
            DaemonKind::LocallyCentral { seed: 2 },
        ] {
            let r = daemon_run(daemon.clone(), 2, 2_000_000);
            assert!(r.quiescent, "{daemon:?}");
            assert_eq!(r.exactly_once, r.sent, "{daemon:?}");
            assert_eq!(r.violations, 0, "{daemon:?}");
        }
    }

    #[test]
    fn unfair_daemon_is_safe() {
        let r = daemon_run(
            DaemonKind::Adversarial {
                seed: 3,
                victims: vec![0],
            },
            3,
            500_000,
        );
        assert_eq!(r.violations, 0, "safety must hold even when unfair");
    }

    #[test]
    fn synchronous_needs_fewest_steps() {
        let sync = daemon_run(DaemonKind::Synchronous, 5, 2_000_000);
        let central = daemon_run(DaemonKind::CentralRandom { seed: 5 }, 5, 2_000_000);
        assert!(
            sync.steps < central.steps,
            "parallel steps should beat serial: {} vs {}",
            sync.steps,
            central.steps
        );
    }
}
