//! **E8 / Proposition 7** — *"The amortized complexity (to forward a
//! message) of SSMFP is `O(max(R_A, D))` rounds."*
//!
//! The proof's core claim: while messages exist for destination `d` and the
//! tables are correct, at least one is delivered to `d` every `3D` rounds.
//! We flood one destination from everywhere and measure rounds per
//! delivery; the ratio must stay within `3D` (plus the `R_A` warm-up for
//! corrupted starts), and must scale like `Θ(D)` across the line family —
//! in sharp contrast with the exponential worst case of Proposition 5.

use crate::parallel::run_ordered;
use crate::report::Table;
use crate::workload::{line_family, Topo};
use ssmfp_core::{DaemonKind, Network, NetworkConfig};
use ssmfp_routing::CorruptionKind;

/// Result of one flood run.
pub struct Prop7Run {
    /// Rounds elapsed across the whole run.
    pub rounds: u64,
    /// Valid messages delivered.
    pub delivered: u64,
    /// Amortized rounds per delivery.
    pub amortized: f64,
    /// The paper's per-delivery bound `3D`.
    pub bound_3d: u64,
    /// The proof's inner lemma, checked directly: the maximum gap in
    /// rounds between consecutive deliveries while messages existed
    /// (measured from the first generation, so the `R_A` warm-up of
    /// corrupted starts is excluded from the lemma's scope).
    pub max_inter_delivery_gap: u64,
}

/// Floods destination 0 with `k` messages from every other node.
pub fn flood_run(topo: &Topo, k: usize, corruption: CorruptionKind, seed: u64) -> Prop7Run {
    let n = topo.graph.n();
    let config = NetworkConfig {
        daemon: DaemonKind::CentralRandom { seed },
        corruption,
        garbage_fill: 0.0,
        seed,
        routing_priority: true,
        choice_strategy: Default::default(),
        seeded_bug: None,
    };
    let mut net = Network::new(topo.graph.clone(), config);
    for s in 1..n {
        for i in 0..k {
            net.send(s, 0, (s + i) as u64 % 8);
        }
    }
    let quiescent = net.run_to_quiescence(100_000_000);
    assert!(quiescent, "flood must drain");
    let delivered = net.ledger().valid_delivered_count();
    let rounds = net.rounds();
    // The inner lemma: while messages of destination 0 exist (and tables
    // are correct), at least one is delivered to 0 every 3D rounds. We
    // measure the maximal inter-delivery gap starting from the first
    // generation event.
    let mut marks: Vec<u64> = Vec::new();
    for g in 0..u64::MAX {
        match net.ledger().generation_of(ssmfp_core::GhostId::Valid(g)) {
            Some(rec) => marks.push(rec.round),
            None => break,
        }
    }
    let first_gen = marks.iter().copied().min().unwrap_or(0);
    let mut delivery_rounds: Vec<u64> = (0..u64::MAX)
        .map_while(|g| {
            let recs = net.ledger().delivery_records(ssmfp_core::GhostId::Valid(g));
            if net
                .ledger()
                .generation_of(ssmfp_core::GhostId::Valid(g))
                .is_none()
            {
                None
            } else {
                Some(recs.first().map(|r| r.round).unwrap_or(u64::MAX))
            }
        })
        .collect();
    delivery_rounds.sort_unstable();
    let mut max_gap = 0u64;
    let mut prev = first_gen;
    for &r in &delivery_rounds {
        if r == u64::MAX {
            continue;
        }
        max_gap = max_gap.max(r.saturating_sub(prev));
        prev = r;
    }
    Prop7Run {
        rounds,
        delivered,
        amortized: rounds as f64 / delivered.max(1) as f64,
        bound_3d: 3 * topo.metrics.diameter() as u64,
        max_inter_delivery_gap: max_gap,
    }
}

/// Sweeps the line family (D scales, Δ = 2).
pub fn run(seed: u64) -> Table {
    run_with(seed, 1)
}

/// Like [`run`], with the sweep cells fanned out over `threads` workers
/// (deterministic: the table is identical for any count).
pub fn run_with(seed: u64, threads: usize) -> Table {
    let mut table = Table::new(
        "E8 / Prop 7 — amortized rounds per delivery ≈ Θ(D), vs the 3D bound (flood to node 0)",
        &[
            "family",
            "n",
            "D",
            "tables",
            "deliveries",
            "rounds",
            "rounds/delivery",
            "max gap",
            "3D",
            "holds",
        ],
    );
    let topos = line_family(&[4, 6, 8, 12, 16]);
    let jobs: Vec<(usize, CorruptionKind)> = topos
        .iter()
        .enumerate()
        .flat_map(|(i, _)| {
            [CorruptionKind::None, CorruptionKind::RandomGarbage]
                .into_iter()
                .map(move |c| (i, c))
        })
        .collect();
    let runs = run_ordered(&jobs, threads, |_, &(i, corruption)| {
        flood_run(&topos[i], 3, corruption, seed)
    });
    for (&(i, corruption), r) in jobs.iter().zip(runs) {
        let t = &topos[i];
        // With corrupted tables the R_A warm-up is amortized over many
        // deliveries; allow the max(R_A, 3D) form with R_A ≤ 2n rounds.
        let allowance = r.bound_3d.max(2 * t.metrics.n() as u64);
        let holds = r.amortized <= allowance as f64 && r.max_inter_delivery_gap <= allowance;
        table.row(vec![
            t.name.clone(),
            t.metrics.n().to_string(),
            t.metrics.diameter().to_string(),
            corruption.label().to_string(),
            r.delivered.to_string(),
            r.rounds.to_string(),
            format!("{:.2}", r.amortized),
            r.max_inter_delivery_gap.to_string(),
            r.bound_3d.to_string(),
            holds.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amortized_within_bound() {
        let table = run(6);
        for row in &table.rows {
            assert_eq!(row[9], "true", "Prop 7 bound violated: {row:?}");
        }
    }

    #[test]
    fn inner_lemma_gap_within_3d_when_clean() {
        // The proof's core: with correct tables, ≤ 3D rounds between
        // consecutive deliveries while messages exist.
        let r = flood_run(
            &crate::workload::line_family(&[10])[0],
            3,
            CorruptionKind::None,
            4,
        );
        assert!(
            r.max_inter_delivery_gap <= r.bound_3d,
            "gap {} exceeds 3D = {}",
            r.max_inter_delivery_gap,
            r.bound_3d
        );
    }

    #[test]
    fn amortized_scales_linearly_not_exponentially() {
        // Θ(D): doubling D must grow the amortized cost by far less than
        // the 2^D of the worst case.
        let small = flood_run(
            &crate::workload::line_family(&[6])[0],
            3,
            CorruptionKind::None,
            8,
        );
        let large = flood_run(
            &crate::workload::line_family(&[12])[0],
            3,
            CorruptionKind::None,
            8,
        );
        let growth = large.amortized / small.amortized.max(0.01);
        assert!(
            growth < 8.0,
            "amortized growth {growth:.2}× for 2× D is not Θ(D)-like"
        );
    }
}
