//! **E13** — the paper's §4 future work, explored: *"we believe that we
//! can keep our protocol and modify the fair scheme of selection of
//! messages `choice_p(d)`"*.
//!
//! We compare three selection schemes under maximal contention (stars: all
//! leaves flood one leaf through the hub, the hub also emits):
//!
//! * **rotation** — the paper's queue of length Δ+1,
//! * **longest-waiting** — an LRU-like fair alternative,
//! * **greedy** — always the first satisfying candidate (**unfair**).
//!
//! Both fair schemes satisfy SP with comparable constants; the greedy
//! scheme starves the hub's own emission behind the competing backlog,
//! demonstrating that the `choice_p(d)` fairness is what carries SP's
//! "any message can be generated in a finite time".

use crate::report::Table;
use ssmfp_core::choice::ChoiceStrategy;
use ssmfp_core::{DaemonKind, Network, NetworkConfig};
use ssmfp_topology::gen;

/// Result of one contention run under a strategy.
pub struct AblationRun {
    /// Rounds from the hub's request to its generation.
    pub hub_emission_delay: u64,
    /// Rounds to full drain.
    pub total_rounds: u64,
    /// Whether every valid message was delivered exactly once.
    pub exactly_once: bool,
}

/// Floods a star's hub with competing traffic, then measures how long the
/// hub's own emission waits under `strategy`.
pub fn contention_run(n: usize, backlog: u64, strategy: ChoiceStrategy, seed: u64) -> AblationRun {
    let config = NetworkConfig::clean()
        .with_daemon(DaemonKind::CentralRandom { seed })
        .with_choice_strategy(strategy);
    let mut net = Network::new(gen::star(n), config);
    let mut ghosts = Vec::new();
    for leaf in 1..n - 1 {
        for i in 0..backlog {
            ghosts.push(net.send(leaf, n - 1, (leaf as u64 + i) % 8));
        }
    }
    // Prime the pipelines, then raise the hub's own request.
    for _ in 0..20 * n as u64 {
        net.pump();
    }
    let send_round = net.rounds();
    let hub_msg = net.send(0, n - 1, 7);
    ghosts.push(hub_msg);
    net.run_to_quiescence(50_000_000);
    let gen_round = net
        .ledger()
        .generation_of(hub_msg)
        .expect("finite backlog: generated eventually")
        .round;
    AblationRun {
        hub_emission_delay: gen_round - send_round,
        total_rounds: net.rounds(),
        exactly_once: ghosts.iter().all(|g| net.deliveries_of(*g) == 1),
    }
}

/// The E13 comparison table.
pub fn run(seed: u64) -> Table {
    let mut table = Table::new(
        "E13 — choice_p(d) selection schemes under hub contention (star, 3 leaves × 20-message backlog)",
        &["strategy", "fair", "hub emission delay (rounds)", "total rounds", "exactly-once"],
    );
    for (name, fair, strategy) in [
        ("rotation (paper)", true, ChoiceStrategy::RotationQueue),
        ("longest-waiting", true, ChoiceStrategy::LongestWaiting),
        ("greedy-first", false, ChoiceStrategy::GreedyFirst),
    ] {
        let r = contention_run(6, 20, strategy, seed);
        table.row(vec![
            name.to_string(),
            fair.to_string(),
            r.hub_emission_delay.to_string(),
            r.total_rounds.to_string(),
            r.exactly_once.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fair_schemes_bound_the_delay_greedy_does_not() {
        let rotation = contention_run(5, 25, ChoiceStrategy::RotationQueue, 3);
        let lru = contention_run(5, 25, ChoiceStrategy::LongestWaiting, 3);
        let greedy = contention_run(5, 25, ChoiceStrategy::GreedyFirst, 3);
        assert!(rotation.exactly_once && lru.exactly_once && greedy.exactly_once);
        assert!(
            greedy.hub_emission_delay > 2 * rotation.hub_emission_delay.max(1),
            "greedy {} vs rotation {}",
            greedy.hub_emission_delay,
            rotation.hub_emission_delay
        );
        assert!(
            greedy.hub_emission_delay > 2 * lru.hub_emission_delay.max(1),
            "greedy {} vs lru {}",
            greedy.hub_emission_delay,
            lru.hub_emission_delay
        );
    }
}
