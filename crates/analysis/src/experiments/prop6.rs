//! **E7 / Proposition 6** — *"The delay (waiting time before the first
//! emission) and the waiting time (between two consecutive emissions) of
//! SSMFP is `O(max(R_A, Δ^D))` rounds in the worst case."*
//!
//! The delay is governed by `choice_p(d)` fairness: a requesting processor
//! is served after at most `Δ − 1` releases of `bufR_p(d)`. We measure on
//! stars (maximal contention at the hub: all leaves flood the hub's
//! reception buffer for one destination while the hub itself also wants to
//! emit) and report request→generation delay and the inter-generation
//! waiting time at the most contended processor.

use crate::parallel::run_ordered;
use crate::report::Table;
use crate::workload::star_family;
use ssmfp_core::{DaemonKind, Network, NetworkConfig};
use ssmfp_routing::CorruptionKind;

/// Delay/waiting measurements on one star.
pub struct Prop6Run {
    /// Rounds from request to first generation at the hub.
    pub delay_rounds: u64,
    /// Max rounds between consecutive generations at the hub.
    pub max_waiting_rounds: u64,
    /// The Δ of the star.
    pub delta: usize,
}

/// Floods a star toward one leaf and measures the hub's delay and waiting.
pub fn star_contention_run(n: usize, corruption: CorruptionKind, seed: u64) -> Prop6Run {
    let graph = ssmfp_topology::gen::star(n);
    let delta = graph.max_degree();
    let dest = n - 1; // a leaf: every other node competes for its buffers
    let config = NetworkConfig {
        daemon: DaemonKind::CentralRandom { seed },
        corruption,
        garbage_fill: 0.0,
        seed,
        routing_priority: true,
        choice_strategy: Default::default(),
        seeded_bug: None,
    };
    let mut net = Network::new(graph, config);
    // All leaves (except dest) send K messages to dest — they all route
    // through the hub, contending for bufR_hub(dest).
    let k = 3;
    for leaf in 1..n {
        if leaf != dest {
            for i in 0..k {
                net.send(leaf, dest, (leaf as u64 + i) % 8);
            }
        }
    }
    // The hub's own messages, whose generations we time.
    let mut hub_ghosts = Vec::new();
    for i in 0..k {
        hub_ghosts.push(net.send(0, dest, i % 8));
    }
    let send_round = net.rounds();
    net.run_to_quiescence(50_000_000);
    let gen_rounds: Vec<u64> = hub_ghosts
        .iter()
        .map(|g| {
            net.ledger()
                .generation_of(*g)
                .expect("generated in finite time (SP first property)")
                .round
        })
        .collect();
    let delay_rounds = gen_rounds[0].saturating_sub(send_round);
    let max_waiting_rounds = gen_rounds
        .windows(2)
        .map(|w| w[1] - w[0])
        .max()
        .unwrap_or(0);
    Prop6Run {
        delay_rounds,
        max_waiting_rounds,
        delta,
    }
}

/// Sweeps star sizes.
pub fn run(seed: u64) -> Table {
    run_with(seed, 1)
}

/// Like [`run`], with the sweep cells fanned out over `threads` workers
/// (deterministic: the table is identical for any count).
pub fn run_with(seed: u64, threads: usize) -> Table {
    let mut table = Table::new(
        "E7 / Prop 6 — delay and waiting time under maximal contention (stars, flood to one leaf)",
        &[
            "family",
            "n",
            "Δ",
            "tables",
            "delay (rounds)",
            "max waiting (rounds)",
            "bound Δ²·c",
        ],
    );
    let topos = star_family(&[4, 6, 8, 10]);
    let jobs: Vec<(usize, CorruptionKind)> = topos
        .iter()
        .enumerate()
        .flat_map(|(i, _)| {
            [CorruptionKind::None, CorruptionKind::RandomGarbage]
                .into_iter()
                .map(move |c| (i, c))
        })
        .collect();
    let runs = run_ordered(&jobs, threads, |_, &(i, corruption)| {
        star_contention_run(topos[i].metrics.n(), corruption, seed)
    });
    for (&(i, corruption), r) in jobs.iter().zip(runs) {
        let t = &topos[i];
        table.row(vec![
            t.name.clone(),
            t.metrics.n().to_string(),
            r.delta.to_string(),
            corruption.label().to_string(),
            r.delay_rounds.to_string(),
            r.max_waiting_rounds.to_string(),
            (t.metrics.delta_pow_d().max(t.metrics.n() as u64) * 16).to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hub_always_generates_despite_contention() {
        // SP's first property: generation happens in finite time. The
        // assertion is inside star_contention_run (generation_of expect).
        let r = star_contention_run(6, CorruptionKind::None, 3);
        assert!(r.delay_rounds < 10_000);
        assert!(r.max_waiting_rounds < 10_000);
    }

    #[test]
    fn bound_holds_on_sweep() {
        let table = run(4);
        for row in &table.rows {
            let delay: u64 = row[4].parse().unwrap();
            let waiting: u64 = row[5].parse().unwrap();
            let bound: u64 = row[6].parse().unwrap();
            assert!(delay <= bound, "delay over bound: {row:?}");
            assert!(waiting <= bound, "waiting over bound: {row:?}");
        }
    }
}
