//! **E14** — the §4 closing open problem, explored: the message-passing
//! port of SSMFP (see `ssmfp-mp`). The table reports, per scenario class
//! and across a seed sweep, whether every generated message was delivered
//! exactly once and whether the system drained — the empirical analogue of
//! Specification SP for the ported protocol.

use crate::report::Table;
use ssmfp_mp::{MpConfig, PortNetwork};
use ssmfp_topology::gen;

/// Tally of one scenario class over a seed sweep.
#[derive(Debug, Default, Clone, Copy)]
pub struct PortTally {
    /// Seeds swept.
    pub runs: u64,
    /// Valid messages sent in total.
    pub sent: u64,
    /// Delivered exactly once at the right node.
    pub exactly_once: u64,
    /// Lost.
    pub lost: u64,
    /// Duplicated.
    pub duplicated: u64,
    /// Runs that failed to drain in budget.
    pub non_quiescent: u64,
}

/// Routing layer used by the port sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortRouting {
    /// Correct static tables.
    Clean,
    /// Random tables that self-repair on a timer (stand-in for A).
    TimerRepair,
    /// The real message-passing distance-vector layer, from garbage
    /// estimates.
    DistVecGarbage,
}

/// Runs one scenario class over `seeds`.
pub fn sweep(
    seeds: std::ops::Range<u64>,
    routing: PortRouting,
    wire_garbage: usize,
    buffer_garbage: usize,
) -> PortTally {
    let mut tally = PortTally::default();
    for seed in seeds {
        let graph = gen::ring(6);
        let n = graph.n();
        let config = MpConfig {
            seed,
            timeout_bias: 0.3,
        };
        let mut net = match routing {
            PortRouting::Clean => {
                PortNetwork::new(graph, config, false, 0, wire_garbage, buffer_garbage)
            }
            PortRouting::TimerRepair => {
                PortNetwork::new(graph, config, true, 10, wire_garbage, buffer_garbage)
            }
            PortRouting::DistVecGarbage => {
                PortNetwork::new_dv(graph, config, true, wire_garbage, buffer_garbage)
            }
        };
        let mut count = 0u64;
        for s in 0..n {
            net.send(s, (s + 2) % n, s as u64 % 8);
            count += 1;
        }
        let quiescent = net.run_to_quiescence(10_000_000);
        let audit = net.audit();
        tally.runs += 1;
        tally.sent += count;
        tally.exactly_once += audit.exactly_once;
        tally.lost += audit.lost;
        tally.duplicated += audit.duplicated;
        if !quiescent {
            tally.non_quiescent += 1;
        }
    }
    tally
}

/// The E14 table.
pub fn run(seed: u64) -> Table {
    let mut table = Table::new(
        "E14 — message-passing port (ring-6, 10 seeds/class): exactly-once under async schedules",
        &[
            "scenario",
            "runs",
            "sent",
            "exactly-once",
            "lost",
            "duplicated",
            "non-quiescent",
        ],
    );
    let scenarios: [(&str, PortRouting, usize, usize); 4] = [
        ("clean", PortRouting::Clean, 0, 0),
        (
            "corrupted tables (timer repair)",
            PortRouting::TimerRepair,
            0,
            0,
        ),
        (
            "corrupted + wire/buffer garbage",
            PortRouting::TimerRepair,
            24,
            3,
        ),
        (
            "distance-vector layer, garbage init",
            PortRouting::DistVecGarbage,
            12,
            2,
        ),
    ];
    for (name, routing, wire, buffers) in scenarios {
        let t = sweep(seed..seed + 10, routing, wire, buffers);
        table.row(vec![
            name.to_string(),
            t.runs.to_string(),
            t.sent.to_string(),
            t.exactly_once.to_string(),
            t.lost.to_string(),
            t.duplicated.to_string(),
            t.non_quiescent.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_is_exactly_once_across_sweeps() {
        for (routing, wire, buffers) in [
            (PortRouting::Clean, 0, 0),
            (PortRouting::TimerRepair, 16, 2),
            (PortRouting::DistVecGarbage, 8, 1),
        ] {
            let t = sweep(0..6, routing, wire, buffers);
            assert_eq!(
                t.exactly_once, t.sent,
                "{routing:?} {wire} {buffers}: {t:?}"
            );
            assert_eq!(t.lost + t.duplicated + t.non_quiescent, 0, "{t:?}");
        }
    }
}
