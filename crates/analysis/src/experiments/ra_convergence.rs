//! **E12** — measuring `R_A`, the routing algorithm's stabilization time,
//! per corruption family and daemon. This is the hidden parameter of every
//! `max(R_A, ·)` bound in Propositions 5–7.

use crate::report::Table;
use crate::workload::standard_suite;
use ssmfp_kernel::{Daemon, RoundRobinDaemon, SynchronousDaemon};
use ssmfp_routing::convergence::measure;
use ssmfp_routing::CorruptionKind;

/// Sweeps `R_A` over the standard suite.
pub fn run(seed: u64) -> Table {
    let mut table = Table::new(
        "E12 — measured R_A (rounds to silence of A) per corruption family",
        &[
            "topology",
            "n",
            "D",
            "tables",
            "R_A sync (rounds)",
            "R_A round-robin (rounds)",
            "correct after",
        ],
    );
    for t in standard_suite() {
        for kind in [
            CorruptionKind::RandomGarbage,
            CorruptionKind::AntiDistance,
            CorruptionKind::AllZero,
            CorruptionKind::ParentCycles,
        ] {
            let sync = measure(
                &t.graph,
                kind,
                Box::new(SynchronousDaemon) as Box<dyn Daemon>,
                seed,
            );
            let rr = measure(
                &t.graph,
                kind,
                Box::new(RoundRobinDaemon::new()) as Box<dyn Daemon>,
                seed,
            );
            table.row(vec![
                t.name.clone(),
                t.metrics.n().to_string(),
                t.metrics.diameter().to_string(),
                kind.label().to_string(),
                sync.rounds.to_string(),
                rr.rounds.to_string(),
                (sync.correct && rr.correct).to_string(),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ra_is_always_finite_and_correct() {
        let table = run(3);
        for row in &table.rows {
            assert_eq!(row[6], "true", "A converged incorrectly: {row:?}");
            let n: u64 = row[1].parse().unwrap();
            let sync: u64 = row[4].parse().unwrap();
            // R_A is linear-ish in n (count-to-cap × per-processor
            // destination multiplexing), never quadratic blowup.
            assert!(sync <= 8 * n + 8, "R_A not linear: {row:?}");
        }
    }
}
