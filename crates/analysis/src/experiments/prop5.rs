//! **E6 / Proposition 5** — *"a message m needs `O(max(R_A, Δ^D))` rounds
//! to be delivered once generated."*
//!
//! Two series isolate the bound's two parameters:
//!
//! * **lines** (`Δ = 2`): D grows, bound `2^D`;
//! * **stars** (`D = 2`): Δ grows, bound `Δ²`;
//!
//! each measured with clean and corrupted starts (the corrupted start adds
//! the `R_A` term), with heavy cross-traffic so the `choice` queues are
//! actually contended — the mechanism behind the `Δ^D` factor. The paper's
//! bound is a *worst case*; the observed values sit far below it (our
//! measured shape is low-order polynomial), which we record as a finding in
//! EXPERIMENTS.md.

use crate::parallel::run_ordered;
use crate::report::Table;
use crate::workload::{line_family, star_family, Topo};
use ssmfp_core::{DaemonKind, Network, NetworkConfig};
use ssmfp_routing::CorruptionKind;

/// Measures rounds from generation to delivery of a probe message sent
/// across the topology's diameter, under all-pairs background traffic.
pub fn probe_delivery_rounds(topo: &Topo, corruption: CorruptionKind, seed: u64) -> Option<u64> {
    let n = topo.graph.n();
    let config = NetworkConfig {
        daemon: DaemonKind::CentralRandom { seed },
        corruption,
        garbage_fill: 0.3,
        seed,
        routing_priority: true,
        choice_strategy: Default::default(),
        seeded_bug: None,
    };
    let mut net = Network::new(topo.graph.clone(), config);
    // Background traffic: every node sends one message to a far node.
    for s in 0..n {
        let far = (0..n)
            .max_by_key(|&d| topo.metrics.dist(s, d))
            .expect("non-empty");
        if far != s {
            net.send(s, far, s as u64 % 8);
        }
    }
    // Probe across the diameter.
    let (src, dst) = (0..n)
        .flat_map(|a| (0..n).map(move |b| (a, b)))
        .max_by_key(|&(a, b)| topo.metrics.dist(a, b))
        .expect("non-empty");
    let probe = net.send(src, dst, 7);
    // Rounds from *generation* (the proposition's clock starts there).
    net.run_until_delivered(probe, 50_000_000).ok()?;
    let generated = net.ledger().generation_of(probe)?.round;
    let delivered = net.ledger().delivery_records(probe).first()?.round;
    Some(delivered - generated)
}

/// Sweeps the two families.
pub fn run(seed: u64) -> Table {
    run_with(seed, 1)
}

/// Like [`run`], with the sweep cells fanned out over `threads` workers
/// (deterministic: the table is identical for any count).
pub fn run_with(seed: u64, threads: usize) -> Table {
    let mut table = Table::new(
        "E6 / Prop 5 — delivery rounds after generation vs bound Δ^D (probe across diameter, loaded network)",
        &["family", "n", "Δ", "D", "tables", "rounds", "bound Δ^D", "holds"],
    );
    let mut topos = line_family(&[4, 6, 8, 10]);
    topos.extend(star_family(&[4, 6, 8, 10]));
    let jobs: Vec<(usize, CorruptionKind)> = topos
        .iter()
        .enumerate()
        .flat_map(|(i, _)| {
            [CorruptionKind::None, CorruptionKind::RandomGarbage]
                .into_iter()
                .map(move |c| (i, c))
        })
        .collect();
    let results = run_ordered(&jobs, threads, |_, &(i, corruption)| {
        probe_delivery_rounds(&topos[i], corruption, seed)
            .expect("probe must be delivered (snap-stabilization)")
    });
    for (&(i, corruption), rounds) in jobs.iter().zip(results) {
        let t = &topos[i];
        let bound = t.metrics.delta_pow_d();
        table.row(vec![
            t.name.clone(),
            t.metrics.n().to_string(),
            t.metrics.max_degree().to_string(),
            t.metrics.diameter().to_string(),
            corruption.label().to_string(),
            rounds.to_string(),
            bound.to_string(),
            // The Prop-5 bound is asymptotic; we check observed ≤ a
            // small multiple of max(R_A, Δ^D) with R_A ≤ n rounds.
            (rounds <= 16 * bound.max(t.metrics.n() as u64)).to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probes_always_delivered_and_within_bound() {
        let table = run(3);
        assert!(!table.rows.is_empty());
        for row in &table.rows {
            assert_eq!(row[7], "true", "Prop 5 bound violated: {row:?}");
        }
    }

    #[test]
    fn probe_rounds_grow_with_diameter() {
        // Larger lines need more rounds (clean tables, same seed).
        let small = probe_delivery_rounds(
            &crate::workload::line_family(&[4])[0],
            CorruptionKind::None,
            9,
        )
        .unwrap();
        let large = probe_delivery_rounds(
            &crate::workload::line_family(&[12])[0],
            CorruptionKind::None,
            9,
        )
        .unwrap();
        assert!(large > small, "rounds must grow with D: {small} vs {large}");
    }
}
