//! **E10** — the paper's motivation, quantified: when the initial
//! configuration is corrupted, the fault-free baseline loses and/or
//! duplicates valid messages while SSMFP delivers every one of them exactly
//! once.
//!
//! Both protocols run the same workload from equally corrupted starts
//! across a seed sweep; we report per-protocol totals of lost, duplicated,
//! and undelivered valid messages, plus SP violations for SSMFP (always 0).

use crate::report::Table;
use ssmfp_core::baseline::BaselineNetwork;
use ssmfp_core::{DaemonKind, Network, NetworkConfig};
use ssmfp_routing::CorruptionKind;
use ssmfp_topology::gen;

/// Aggregated tallies across a seed sweep.
#[derive(Debug, Default, Clone, Copy)]
pub struct CorruptionTally {
    /// Messages sent in total.
    pub sent: u64,
    /// Delivered exactly once.
    pub exactly_once: u64,
    /// Lost (gone without delivery).
    pub lost: u64,
    /// Delivered more than once.
    pub duplicated: u64,
    /// Still undelivered at the step budget (in-flight or stuck).
    pub undelivered: u64,
}

/// Runs the sweep for one protocol.
pub fn sweep(seeds: std::ops::Range<u64>, baseline: bool) -> CorruptionTally {
    let mut tally = CorruptionTally::default();
    for seed in seeds {
        let graph = gen::ring(8);
        let n = graph.n();
        let sends: Vec<(usize, usize, u64)> = (0..n)
            .flat_map(|s| (0..2).map(move |k| (s, (s + 3 + k) % n, ((s + k) % 8) as u64)))
            .collect();
        if baseline {
            let mut net = BaselineNetwork::new(
                graph,
                DaemonKind::CentralRandom { seed },
                CorruptionKind::AntiDistance,
                0.5,
                seed,
            );
            let ghosts: Vec<_> = sends.iter().map(|&(s, d, p)| net.send(s, d, p)).collect();
            net.run_to_quiescence(500_000);
            let lost: std::collections::HashSet<_> = net.lost_messages().into_iter().collect();
            for g in &ghosts {
                tally.sent += 1;
                match net.deliveries_of(*g) {
                    0 if lost.contains(g) => tally.lost += 1,
                    0 => tally.undelivered += 1,
                    1 => tally.exactly_once += 1,
                    _ => tally.duplicated += 1,
                }
            }
        } else {
            let config = NetworkConfig {
                daemon: DaemonKind::CentralRandom { seed },
                corruption: CorruptionKind::AntiDistance,
                garbage_fill: 0.5,
                seed,
                routing_priority: true,
                choice_strategy: Default::default(),
                seeded_bug: None,
            };
            let mut net = Network::new(graph, config);
            let ghosts: Vec<_> = sends.iter().map(|&(s, d, p)| net.send(s, d, p)).collect();
            net.run_to_quiescence(500_000);
            assert!(
                net.check_sp().is_empty(),
                "SSMFP violated SP under seed {seed}: {:?}",
                net.check_sp()
            );
            for g in &ghosts {
                tally.sent += 1;
                match net.deliveries_of(*g) {
                    0 => tally.undelivered += 1,
                    1 => tally.exactly_once += 1,
                    _ => tally.duplicated += 1,
                }
            }
        }
    }
    tally
}

/// The E10 comparison table.
pub fn run(seed: u64) -> Table {
    let seeds = seed..seed + 20;
    let ssmfp = sweep(seeds.clone(), false);
    let baseline = sweep(seeds, true);
    let mut table = Table::new(
        "E10 — corrupted starts (anti-distance tables + 50% garbage, ring-8, 20 seeds): exactly-once or broken",
        &["protocol", "sent", "exactly-once", "lost", "duplicated", "undelivered"],
    );
    for (name, t) in [("SSMFP", ssmfp), ("baseline [21]", baseline)] {
        table.row(vec![
            name.to_string(),
            t.sent.to_string(),
            t.exactly_once.to_string(),
            t.lost.to_string(),
            t.duplicated.to_string(),
            t.undelivered.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ssmfp_is_perfect_baseline_is_not() {
        let ssmfp = sweep(0..10, false);
        assert_eq!(ssmfp.exactly_once, ssmfp.sent, "SSMFP must be exactly-once");
        assert_eq!(ssmfp.lost + ssmfp.duplicated + ssmfp.undelivered, 0);

        let baseline = sweep(0..10, true);
        assert!(
            baseline.lost + baseline.duplicated + baseline.undelivered > 0,
            "baseline should break somewhere across 10 corrupted seeds: {baseline:?}"
        );
    }
}
