//! **E4** — caterpillar census along adversarial executions (Figure 4).
//!
//! Runs SSMFP from fully garbage configurations and, at every step,
//! classifies every occupied buffer per Definition 3. The paper's
//! structural invariant — every occupied buffer belongs to a caterpillar —
//! must hold at every configuration; the census also shows the population
//! shifting from garbage toward delivery.

use crate::parallel::run_ordered;
use crate::report::Table;
use crate::workload::small_suite;
use ssmfp_core::{classify_buffers, CaterpillarCensus, Network, NetworkConfig};

/// Result of one censused run.
pub struct Fig4Run {
    /// Peak number of simultaneous caterpillars observed.
    pub peak_total: usize,
    /// Sum over steps of each type (occupancy-time).
    pub type1_time: u64,
    /// Occupancy-time of type 2.
    pub type2_time: u64,
    /// Occupancy-time of type 3.
    pub type3_time: u64,
    /// Orphaned buffers observed (must be 0).
    pub orphans: u64,
    /// Steps executed.
    pub steps: u64,
}

/// Runs one censused execution on `net` for at most `max_steps`.
pub fn censused_run(net: &mut Network, max_steps: u64) -> Fig4Run {
    let mut out = Fig4Run {
        peak_total: 0,
        type1_time: 0,
        type2_time: 0,
        type3_time: 0,
        orphans: 0,
        steps: 0,
    };
    let graph = net.graph().clone();
    for _ in 0..max_steps {
        let census: CaterpillarCensus = classify_buffers(&graph, net.states());
        out.peak_total = out.peak_total.max(census.total());
        out.type1_time += census.type1 as u64;
        out.type2_time += census.type2 as u64;
        out.type3_time += census.type3 as u64;
        out.orphans += census.orphans as u64;
        if let ssmfp_kernel::StepOutcome::Terminal = net.pump() {
            break;
        }
        out.steps += 1;
    }
    out
}

/// Censuses adversarial runs over the small suite (garbage everywhere plus
/// some live traffic).
pub fn run(seed: u64) -> Table {
    run_with(seed, 1)
}

/// Like [`run`], with the per-topology runs fanned out over `threads`
/// workers (deterministic: the table is identical for any count).
pub fn run_with(seed: u64, threads: usize) -> Table {
    let mut table = Table::new(
        "E4 — Figure 4 caterpillar census: every occupied buffer is in a caterpillar",
        &[
            "topology",
            "peak caterpillars",
            "t1-time",
            "t2-time",
            "t3-time",
            "orphans",
            "steps",
        ],
    );
    let topos = small_suite();
    let runs = run_ordered(&topos, threads, |_, t| {
        let mut net = Network::new(t.graph.clone(), NetworkConfig::adversarial(seed));
        // Live traffic on top of the garbage.
        for s in 0..t.graph.n() {
            net.send(s, (s + 1) % t.graph.n(), s as u64);
        }
        censused_run(&mut net, 100_000)
    });
    for (t, r) in topos.iter().zip(runs) {
        table.row(vec![
            t.name.clone(),
            r.peak_total.to_string(),
            r.type1_time.to_string(),
            r.type2_time.to_string(),
            r.type3_time.to_string(),
            r.orphans.to_string(),
            r.steps.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_sweep_is_deterministic() {
        let seq = run_with(11, 1);
        let par = run_with(11, 4);
        assert_eq!(seq.rows, par.rows);
    }

    #[test]
    fn no_orphans_ever() {
        let table = run(11);
        for row in &table.rows {
            assert_eq!(row[5], "0", "structural invariant violated: {row:?}");
            let peak: usize = row[1].parse().unwrap();
            assert!(peak > 0, "garbage must produce caterpillars: {row:?}");
        }
    }
}
