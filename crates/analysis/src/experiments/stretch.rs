//! **E15** — route stretch under corrupted tables, measured through the
//! Lemma 1 trajectory monitor.
//!
//! With correct tables every message takes exactly `dist(src, dst)` hops
//! (the routing is minimal — §3.1's assumption). Starting from corrupted
//! tables, messages emitted *before* `A` converges wander: the per-message
//! **stretch** (net hops ÷ distance) quantifies the detour cost of sending
//! without waiting for the routing layer — the paper's headline capability,
//! priced.

use crate::report::Table;
use crate::workload::standard_suite;
use ssmfp_core::{DaemonKind, Network, NetworkConfig};
use ssmfp_routing::CorruptionKind;

/// Per-run stretch statistics.
#[derive(Debug, Clone, Copy)]
pub struct StretchRun {
    /// Messages measured.
    pub count: u64,
    /// Mean stretch (net hops / distance).
    pub mean_stretch: f64,
    /// Max stretch observed.
    pub max_stretch: f64,
    /// Lemma 1 trajectory violations (must be 0).
    pub violations: u64,
}

/// Sends all-pairs traffic at step 0 and measures per-message stretch.
///
/// Corrupted runs disable the `A`-over-SSMFP priority and use the fully
/// action-nondeterministic daemon: with the priority on, our fast `A`
/// repairs every table before a single message moves, hiding the detours
/// the paper's abstract (slow) `A` would allow. The model permits this
/// interleaving — it is precisely "`A` has not acted at that processor
/// yet".
pub fn stretch_run(
    graph: &ssmfp_topology::Graph,
    corruption: CorruptionKind,
    seed: u64,
) -> StretchRun {
    let metrics = ssmfp_topology::GraphMetrics::new(graph);
    let n = graph.n();
    let corrupted = corruption != CorruptionKind::None;
    let config = NetworkConfig {
        daemon: if corrupted {
            DaemonKind::CentralRandomAction { seed }
        } else {
            DaemonKind::CentralRandom { seed }
        },
        corruption,
        garbage_fill: 0.0,
        seed,
        routing_priority: !corrupted,
        choice_strategy: Default::default(),
        seeded_bug: None,
    };
    let mut net = Network::new(graph.clone(), config);
    net.enable_trajectories();
    let mut sent = Vec::new();
    for s in 0..n {
        for d in 0..n {
            if s != d {
                sent.push((net.send(s, d, ((s + d) % 8) as u64), s, d));
            }
        }
    }
    assert!(net.run_to_quiescence(100_000_000), "must drain");
    let log = net.trajectories().expect("enabled");
    let mut count = 0u64;
    let mut sum = 0.0;
    let mut max = 0.0f64;
    let mut violations = 0u64;
    for &(ghost, s, d) in &sent {
        let t = log.of(ghost).expect("valid message has a trajectory");
        violations += t.validate().len() as u64;
        let dist = metrics.dist(s, d) as f64;
        let stretch = t.net_hops() as f64 / dist.max(1.0);
        count += 1;
        sum += stretch;
        max = max.max(stretch);
    }
    StretchRun {
        count,
        mean_stretch: sum / count.max(1) as f64,
        max_stretch: max,
        violations,
    }
}

/// Sweeps stretch over the standard suite.
pub fn run(seed: u64) -> Table {
    let mut table = Table::new(
        "E15 — route stretch (net hops / distance) when sending before A converges",
        &[
            "topology",
            "n",
            "tables",
            "messages",
            "mean stretch",
            "max stretch",
            "Lemma-1 violations",
        ],
    );
    for t in standard_suite() {
        for corruption in [CorruptionKind::None, CorruptionKind::RandomGarbage] {
            let r = stretch_run(&t.graph, corruption, seed);
            table.row(vec![
                t.name.clone(),
                t.metrics.n().to_string(),
                corruption.label().to_string(),
                r.count.to_string(),
                format!("{:.3}", r.mean_stretch),
                format!("{:.2}", r.max_stretch),
                r.violations.to_string(),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssmfp_topology::gen;

    #[test]
    fn clean_tables_have_stretch_exactly_one() {
        let r = stretch_run(&gen::grid(3, 3), CorruptionKind::None, 2);
        assert_eq!(r.violations, 0);
        assert!(
            (r.mean_stretch - 1.0).abs() < 1e-9,
            "minimal routing must give stretch 1.0, got {}",
            r.mean_stretch
        );
        assert!((r.max_stretch - 1.0).abs() < 1e-9);
    }

    #[test]
    fn corrupted_tables_stretch_but_never_violate_lemma1() {
        let r = stretch_run(&gen::ring(8), CorruptionKind::AntiDistance, 3);
        assert_eq!(r.violations, 0);
        assert!(
            r.max_stretch > 1.0,
            "slow-A emulation should produce at least one detour: {r:?}"
        );
        // Messages still arrive (the exactly-once audit lives elsewhere);
        // bounded detours: stretch stays finite and modest at this scale.
        assert!(r.max_stretch < 50.0, "{}", r.max_stretch);
    }

    #[test]
    fn sweep_reports_all_rows_clean() {
        let table = run(7);
        for row in &table.rows {
            assert_eq!(row[6], "0", "Lemma 1 violated: {row:?}");
            let mean: f64 = row[4].parse().unwrap();
            assert!(mean >= 0.999, "{row:?}");
        }
    }
}
