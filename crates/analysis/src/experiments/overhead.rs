//! **E9** — §4's claim: *"our analysis shows that we ensure
//! snap-stabilization without significant over cost in space or in time
//! with respect to the fault-free algorithm."*
//!
//! Head-to-head with correct tables and clean buffers: the same all-pairs
//! workload on SSMFP and on the fault-free baseline \[21\]. Space over-cost
//! is structural (2n vs n buffers per node — a factor 2); time over-cost is
//! measured as rounds per delivery and moves per delivery.

use crate::report::Table;
use crate::workload::small_suite;
use ssmfp_core::baseline::BaselineNetwork;
use ssmfp_core::{DaemonKind, Network, NetworkConfig};
use ssmfp_routing::CorruptionKind;

/// Paired measurement on one topology.
pub struct OverheadRun {
    /// SSMFP rounds per delivery.
    pub ssmfp_rounds_per_delivery: f64,
    /// Baseline rounds per delivery.
    pub baseline_rounds_per_delivery: f64,
    /// SSMFP buffer moves (R2 + R3) per delivery.
    pub ssmfp_moves_per_delivery: f64,
    /// Baseline buffer moves (pulls) per delivery.
    pub baseline_moves_per_delivery: f64,
}

/// Runs the same all-pairs workload on both protocols.
pub fn paired_run(graph: &ssmfp_topology::Graph, seed: u64) -> OverheadRun {
    let n = graph.n();
    // SSMFP.
    let mut net = Network::new(
        graph.clone(),
        NetworkConfig::clean().with_daemon(DaemonKind::CentralRandom { seed }),
    );
    for s in 0..n {
        for d in 0..n {
            if s != d {
                net.send(s, d, ((s + d) % 8) as u64);
            }
        }
    }
    assert!(net.run_to_quiescence(100_000_000), "SSMFP must drain");
    let delivered = net.ledger().valid_delivered_count().max(1);
    let ssmfp_rounds_per_delivery = net.rounds() as f64 / delivered as f64;
    let ssmfp_moves_per_delivery =
        (net.ledger().forwards + net.ledger().internal_moves) as f64 / delivered as f64;

    // Baseline.
    let mut bl = BaselineNetwork::new(
        graph.clone(),
        DaemonKind::CentralRandom { seed },
        CorruptionKind::None,
        0.0,
        seed,
    );
    for s in 0..n {
        for d in 0..n {
            if s != d {
                bl.send(s, d, ((s + d) % 8) as u64);
            }
        }
    }
    assert!(bl.run_to_quiescence(100_000_000), "baseline must drain");
    let bl_delivered = bl.ledger().valid_delivered_count().max(1);
    OverheadRun {
        ssmfp_rounds_per_delivery,
        baseline_rounds_per_delivery: bl.rounds() as f64 / bl_delivered as f64,
        ssmfp_moves_per_delivery,
        baseline_moves_per_delivery: bl.ledger().forwards as f64 / bl_delivered as f64,
    }
}

/// Sweeps the small suite.
pub fn run(seed: u64) -> Table {
    let mut table = Table::new(
        "E9 — overhead vs fault-free baseline [21], correct tables (all-pairs workload)",
        &[
            "topology",
            "n",
            "ssmfp rnd/del",
            "base rnd/del",
            "time ratio",
            "ssmfp mv/del",
            "base mv/del",
            "ssmfp buf/node",
            "base buf/node",
        ],
    );
    for t in small_suite() {
        let r = paired_run(&t.graph, seed);
        let n = t.metrics.n();
        table.row(vec![
            t.name.clone(),
            n.to_string(),
            format!("{:.2}", r.ssmfp_rounds_per_delivery),
            format!("{:.2}", r.baseline_rounds_per_delivery),
            format!(
                "{:.2}",
                r.ssmfp_rounds_per_delivery / r.baseline_rounds_per_delivery.max(0.01)
            ),
            format!("{:.2}", r.ssmfp_moves_per_delivery),
            format!("{:.2}", r.baseline_moves_per_delivery),
            (2 * n).to_string(),
            n.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssmfp_topology::gen;

    #[test]
    fn overhead_is_bounded_constant() {
        // "No significant over-cost": SSMFP should be within a small
        // constant factor of the baseline in time.
        let r = paired_run(&gen::ring(6), 2);
        let ratio = r.ssmfp_rounds_per_delivery / r.baseline_rounds_per_delivery.max(0.01);
        assert!(
            ratio < 6.0,
            "time over-cost {ratio:.2}× exceeds 'no significant over-cost'"
        );
        assert!(r.ssmfp_rounds_per_delivery > 0.0);
    }

    #[test]
    fn sweep_produces_all_rows() {
        let table = run(1);
        assert_eq!(table.rows.len(), crate::workload::small_suite().len());
        for row in &table.rows {
            let ratio: f64 = row[4].parse().unwrap();
            assert!(ratio < 8.0, "excessive over-cost: {row:?}");
        }
    }
}
