//! **E5 / Proposition 4** — *"In the worst case, 2n invalid messages will
//! be delivered to Processor d."*
//!
//! The destination-`d` component of the buffer graph has `2n` buffers, so
//! at most `2n` distinct invalid messages can exist for `d` at start, and
//! in the worst case all are delivered. We fill **every** buffer with a
//! distinct invalid message (the extremal initial configuration), run to
//! quiescence under corrupted tables, and check the per-destination
//! delivery counts against the bound.

use crate::parallel::run_ordered;
use crate::report::Table;
use crate::workload::standard_suite;
use ssmfp_core::{DaemonKind, Network, NetworkConfig};
use ssmfp_routing::CorruptionKind;

/// Result of one extremal run.
pub struct Prop4Run {
    /// Max invalid deliveries over destinations.
    pub max_per_dest: u64,
    /// Total invalid deliveries.
    pub total: u64,
    /// The Proposition 4 bound `2n`.
    pub bound: u64,
    /// Whether the run drained completely.
    pub quiescent: bool,
}

/// Runs the extremal configuration on one graph.
pub fn extremal_run(
    graph: ssmfp_topology::Graph,
    corruption: CorruptionKind,
    seed: u64,
) -> Prop4Run {
    let n = graph.n();
    let config = NetworkConfig {
        daemon: DaemonKind::CentralRandom { seed },
        corruption,
        garbage_fill: 1.0, // every buffer holds a distinct invalid message
        seed,
        routing_priority: true,
        choice_strategy: Default::default(),
        seeded_bug: None,
    };
    let mut net = Network::new(graph, config);
    let quiescent = net.run_to_quiescence(10_000_000);
    let max_per_dest = (0..n)
        .map(|d| net.ledger().invalid_delivered_at(d))
        .max()
        .unwrap_or(0);
    Prop4Run {
        max_per_dest,
        total: net.ledger().invalid_delivered_count(),
        bound: 2 * n as u64,
        quiescent,
    }
}

/// Sweeps the standard suite with corrupted and correct tables.
pub fn run(seed: u64) -> Table {
    run_with(seed, 1)
}

/// Like [`run`], with the sweep cells fanned out over `threads` workers
/// (deterministic: the table is identical for any count).
pub fn run_with(seed: u64, threads: usize) -> Table {
    let mut table = Table::new(
        "E5 / Prop 4 — invalid deliveries per destination ≤ 2n (extremal start: all 2n² buffers full)",
        &[
            "topology", "n", "tables", "max invalid/dest", "bound 2n", "total invalid",
            "drained", "holds",
        ],
    );
    let topos = standard_suite();
    let jobs: Vec<(usize, CorruptionKind)> = topos
        .iter()
        .enumerate()
        .flat_map(|(i, _)| {
            [CorruptionKind::None, CorruptionKind::RandomGarbage]
                .into_iter()
                .map(move |c| (i, c))
        })
        .collect();
    let runs = run_ordered(&jobs, threads, |_, &(i, corruption)| {
        extremal_run(topos[i].graph.clone(), corruption, seed)
    });
    for (&(i, corruption), r) in jobs.iter().zip(runs) {
        let t = &topos[i];
        table.row(vec![
            t.name.clone(),
            t.metrics.n().to_string(),
            corruption.label().to_string(),
            r.max_per_dest.to_string(),
            r.bound.to_string(),
            r.total.to_string(),
            r.quiescent.to_string(),
            (r.max_per_dest <= r.bound).to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssmfp_topology::gen;

    #[test]
    fn bound_holds_on_suite() {
        let table = run(5);
        for row in &table.rows {
            assert_eq!(row[7], "true", "Prop 4 bound violated: {row:?}");
            assert_eq!(row[6], "true", "run must drain: {row:?}");
        }
    }

    #[test]
    fn extremal_run_delivers_some_invalids() {
        // With every buffer full, the destination's own buffers alone
        // guarantee some invalid deliveries.
        let r = extremal_run(gen::ring(5), CorruptionKind::None, 1);
        assert!(r.total > 0);
        assert!(r.quiescent);
        assert!(r.max_per_dest <= r.bound);
    }

    #[test]
    fn bound_is_tight_up_to_constant_on_line() {
        // On a line with correct tables, destination-side buffers plus the
        // chain toward it deliver a constant fraction of 2n.
        let r = extremal_run(gen::line(6), CorruptionKind::None, 2);
        assert!(
            r.max_per_dest >= 2,
            "expected several invalid deliveries, got {}",
            r.max_per_dest
        );
    }
}
