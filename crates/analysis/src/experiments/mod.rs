//! One module per experiment of the DESIGN.md index.

pub mod choice_ablation;
pub mod corruption;
pub mod daemons;
pub mod decay;
pub mod faults;
pub mod fig3;
pub mod fig4;
pub mod mp_port;
pub mod overhead;
pub mod prop4;
pub mod prop5;
pub mod prop6;
pub mod prop7;
pub mod ra_convergence;
pub mod schemes;
pub mod stretch;

use crate::report::Table;

/// Runs every experiment at its default scale and returns the tables in
/// index order (E1..E11). This is what the `ssmfp-experiments` binary
/// prints and what `EXPERIMENTS.md` records.
pub fn run_all(seed: u64) -> Vec<Table> {
    run_all_with(seed, 1)
}

/// Like [`run_all`], fanning each converted sweep's replicate runs out
/// over `threads` workers ([`crate::parallel::run_ordered`]). The output
/// is identical to `run_all(seed)` for every thread count — the fan-out
/// is a wall-clock optimization only. Experiments whose runs share
/// mutable state across cells (none today) must stay on the sequential
/// path.
pub fn run_all_with(seed: u64, threads: usize) -> Vec<Table> {
    vec![
        schemes::run(),
        fig3::run_with(seed, threads),
        fig4::run_with(seed, threads),
        prop4::run_with(seed, threads),
        prop5::run_with(seed, threads),
        prop6::run_with(seed, threads),
        prop7::run_with(seed, threads),
        overhead::run(seed),
        corruption::run(seed),
        ra_convergence::run(seed),
        choice_ablation::run(seed),
        mp_port::run(seed),
        stretch::run(seed),
        daemons::run(seed),
        decay::run(seed),
        faults::run_with(seed, threads),
    ]
}
