//! **E1 / E2 / E11** — the buffer-graph schemes (Figures 1 & 2, §4 covers).
//!
//! For each topology: build the destination-based scheme (Fig 1), SSMFP's
//! two-buffer scheme (Fig 2), and — where applicable — the acyclic
//! orientation cover (§4: 3 buffers on a ring, 2 on a tree); report buffers
//! per node, acyclicity, and component structure.

use crate::report::Table;
use crate::workload::standard_suite;
use ssmfp_buffer_graph::{destination_based, ring_cover, tree_cover, two_buffer};
use ssmfp_topology::BfsTree;

/// Runs the scheme comparison over the standard suite.
pub fn run() -> Table {
    let mut table = Table::new(
        "E1/E2/E11 — buffer-graph schemes: buffers per node, acyclicity (Figures 1, 2; §4)",
        &[
            "topology",
            "n",
            "Δ",
            "fig1 buf/node",
            "fig1 acyclic",
            "fig1 comps",
            "fig2 buf/node",
            "fig2 acyclic",
            "cover buf/node",
            "cover acyclic",
        ],
    );
    for t in standard_suite() {
        let g = &t.graph;
        let n = g.n();
        let trees: Vec<BfsTree> = (0..n).map(|d| BfsTree::new(g, d)).collect();
        let fig1 = destination_based(&trees);
        let fig2 = two_buffer(&trees);
        // The §4 cover applies to rings and trees (the tractable ranks the
        // paper names); report "-" elsewhere.
        let cover = if t.name.starts_with("ring") {
            Some(ring_cover(n))
        } else if t.name.starts_with("line") || t.name.starts_with("tree") {
            Some(tree_cover(&trees[0]))
        } else {
            None
        };
        let (cover_k, cover_acyclic) = match &cover {
            Some(c) => (
                c.k().to_string(),
                c.buffer_graph(g).is_acyclic().to_string(),
            ),
            None => ("-".into(), "-".into()),
        };
        table.row(vec![
            t.name.clone(),
            n.to_string(),
            g.max_degree().to_string(),
            fig1.slots_per_node().to_string(),
            fig1.is_acyclic().to_string(),
            fig1.weak_components().len().to_string(),
            (fig2.slots_per_node()).to_string(),
            fig2.is_acyclic().to_string(),
            cover_k,
            cover_acyclic,
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_schemes_acyclic_and_sized_as_paper_states() {
        let table = run();
        for row in &table.rows {
            let n: usize = row[1].parse().unwrap();
            // Fig 1: n buffers/node, acyclic, n components.
            assert_eq!(row[3], n.to_string(), "{row:?}");
            assert_eq!(row[4], "true");
            assert_eq!(row[5], n.to_string());
            // Fig 2: 2n buffers/node, acyclic.
            assert_eq!(row[6], (2 * n).to_string());
            assert_eq!(row[7], "true");
            // Cover: 3 on rings, 2 on lines/trees, always acyclic.
            match row[0].split('-').next().unwrap() {
                "ring" => assert_eq!(row[8], "3"),
                "line" | "tree2" => assert_eq!(row[8], "2"),
                _ => assert_eq!(row[8], "-"),
            }
            if row[8] != "-" {
                assert_eq!(row[9], "true");
            }
        }
    }
}
