//! **E19** — the fault sweep: SP violations and post-fault convergence as
//! a function of the number of *mid-execution* transient faults.
//!
//! Each cell runs seeded scenarios (ring-6, corrupted start, central
//! random daemon) with a random [`FaultPlan`] of the given size striking
//! inside the first 200 steps, then audits the post-fault epoch with the
//! epoch-scoped ledger oracle: every message generated at or after the
//! last fault must be delivered exactly once (snap-stabilization's `SP`),
//! so the violations column must read 0 at every fault rate. The mean
//! post-fault step count quantifies how convergence degrades as faults
//! accumulate.

use crate::parallel;
use crate::report::Table;
use ssmfp_core::faults::{FaultPlan, FaultPlanConfig};
use ssmfp_core::replay::{run_fault_scenario, FaultScenario, ScenarioOutcome, SendSpec};
use ssmfp_core::DaemonKind;
use ssmfp_routing::CorruptionKind;
use ssmfp_topology::gen;

/// All faults strike within this prefix of the execution.
const HORIZON: u64 = 200;

/// Scenarios per fault-count cell.
const SCENARIOS_PER_CELL: u64 = 12;

/// Builds one sweep scenario: `faults` transient faults inside the
/// horizon, four sends straddling the fault window plus one after it.
pub fn scenario(seed: u64, faults: usize) -> FaultScenario {
    let graph = gen::ring(6);
    let n = graph.n();
    let plan = FaultPlan::random(
        &graph,
        FaultPlanConfig {
            faults,
            horizon: HORIZON,
            seed,
        },
    );
    let sends = [0u64, 40, 90, 150, HORIZON + 50]
        .iter()
        .enumerate()
        .map(|(k, &at)| SendSpec {
            at_step: at,
            src: (seed as usize + k) % n,
            dst: (seed as usize + k + 3) % n,
            payload: (seed + k as u64) % 8,
        })
        .collect();
    FaultScenario {
        n,
        edges: graph.edges().to_vec(),
        daemon: DaemonKind::CentralRandom { seed },
        corruption: CorruptionKind::RandomGarbage,
        garbage_fill: 0.4,
        seed,
        bug: None,
        budget: 300_000,
        sends,
        plan,
    }
}

/// One aggregated cell of the sweep.
#[derive(Debug, Default, Clone, Copy)]
pub struct FaultCell {
    /// Scenarios run.
    pub scenarios: u64,
    /// SP violations across all post-fault epochs (must be 0).
    pub violations: u64,
    /// Scenarios that did not reach quiescence within the budget.
    pub non_converged: u64,
    /// Mean steps from the last fault to quiescence (converged runs).
    pub mean_post_fault_steps: f64,
}

/// Runs one fault-count cell over `SCENARIOS_PER_CELL` seeds.
pub fn cell(seed: u64, faults: usize, threads: usize) -> FaultCell {
    let seeds: Vec<u64> = (seed..seed + SCENARIOS_PER_CELL).collect();
    let outcomes: Vec<ScenarioOutcome> = parallel::run_ordered(&seeds, threads, |_, &s| {
        run_fault_scenario(&scenario(s, faults))
    });
    let mut out = FaultCell {
        scenarios: outcomes.len() as u64,
        ..FaultCell::default()
    };
    let mut post_steps = 0u64;
    let mut converged = 0u64;
    for o in &outcomes {
        out.violations += o.violations.len() as u64;
        out.violations += o.undelivered.len() as u64;
        out.violations += o.generation_blocked.len() as u64;
        if o.quiescent {
            converged += 1;
            post_steps += o.post_fault_steps;
        } else {
            out.non_converged += 1;
        }
    }
    if converged > 0 {
        out.mean_post_fault_steps = post_steps as f64 / converged as f64;
    }
    out
}

/// The E19 table at default scale.
pub fn run(seed: u64) -> Table {
    run_with(seed, 1)
}

/// As [`run`], fanning the per-seed scenarios over `threads` workers.
pub fn run_with(seed: u64, threads: usize) -> Table {
    let mut table = Table::new(
        "E19 — mid-execution fault sweep (ring-6, random garbage start, central random \
         daemon, 12 seeds/cell): SP on the post-fault epoch vs fault count",
        &[
            "faults/run",
            "scenarios",
            "violations",
            "non-converged",
            "mean post-fault steps",
        ],
    );
    for faults in [0usize, 2, 4, 8] {
        let c = cell(seed, faults, threads);
        table.row(vec![
            faults.to_string(),
            c.scenarios.to_string(),
            c.violations.to_string(),
            c.non_converged.to_string(),
            format!("{:.1}", c.mean_post_fault_steps),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sp_holds_at_every_fault_rate() {
        for faults in [0usize, 4] {
            let c = cell(0, faults, 1);
            assert_eq!(c.scenarios, SCENARIOS_PER_CELL);
            assert_eq!(c.violations, 0, "faults={faults}: {c:?}");
            assert_eq!(c.non_converged, 0, "faults={faults}: {c:?}");
        }
    }

    #[test]
    fn sweep_is_thread_count_invariant() {
        let a = cell(7, 2, 1);
        let b = cell(7, 2, 4);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}
