//! `ssmfp-experiments` — regenerates every table of `EXPERIMENTS.md`.
//!
//! Usage:
//!   `cargo run --release -p ssmfp-analysis --bin experiments [seed]`
//!   `cargo run --release -p ssmfp-analysis --bin experiments -- [seed] --csv DIR --threads N`
//!
//! With `--csv DIR`, every table is additionally written as a CSV file
//! (one per experiment) for plotting pipelines. With `--threads N` the
//! replicate sweeps fan out over N workers (deterministic ordered merge:
//! the tables are identical to a single-threaded run; default: the
//! machine's available parallelism).

use ssmfp_analysis::experiments::run_all_with;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let csv_dir: Option<String> = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1).cloned());
    let threads: usize = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--threads takes a number"))
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .max(1);
    // The seed is the first bare numeric argument — skip option values.
    let seed: u64 = args
        .iter()
        .enumerate()
        .filter(|(i, _)| *i == 0 || (args[i - 1] != "--csv" && args[i - 1] != "--threads"))
        .find_map(|(_, a)| a.parse().ok())
        .unwrap_or(2026);
    println!("SSMFP experiment suite (seed {seed}, {threads} sweep threads)");
    println!("Reproduces: Cournier, Dubois, Villain — IPPS 2009, all figures & propositions.\n");
    for (i, table) in run_all_with(seed, threads).into_iter().enumerate() {
        println!("{table}");
        if let Some(dir) = &csv_dir {
            std::fs::create_dir_all(dir).expect("create csv dir");
            let slug: String = table
                .title
                .chars()
                .take_while(|c| *c != ' ')
                .flat_map(|c| c.to_lowercase())
                .map(|c| if c.is_alphanumeric() { c } else { '_' })
                .collect();
            let path = format!("{dir}/{:02}_{slug}.csv", i + 1);
            std::fs::write(&path, table.to_csv()).expect("write csv");
        }
    }
    if let Some(dir) = &csv_dir {
        println!("(CSV tables written to {dir}/)");
    }
}
