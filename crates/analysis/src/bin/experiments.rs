//! `ssmfp-experiments` — regenerates every table of `EXPERIMENTS.md`.
//!
//! Usage:
//!   `cargo run --release -p ssmfp-analysis --bin experiments [seed]`
//!   `cargo run --release -p ssmfp-analysis --bin experiments -- [seed] --csv DIR`
//!
//! With `--csv DIR`, every table is additionally written as a CSV file
//! (one per experiment) for plotting pipelines.

use ssmfp_analysis::experiments::run_all;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed: u64 = args.iter().find_map(|a| a.parse().ok()).unwrap_or(2026);
    let csv_dir: Option<String> = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1).cloned());
    println!("SSMFP experiment suite (seed {seed})");
    println!("Reproduces: Cournier, Dubois, Villain — IPPS 2009, all figures & propositions.\n");
    for (i, table) in run_all(seed).into_iter().enumerate() {
        println!("{table}");
        if let Some(dir) = &csv_dir {
            std::fs::create_dir_all(dir).expect("create csv dir");
            let slug: String = table
                .title
                .chars()
                .take_while(|c| *c != ' ')
                .flat_map(|c| c.to_lowercase())
                .map(|c| if c.is_alphanumeric() { c } else { '_' })
                .collect();
            let path = format!("{dir}/{:02}_{slug}.csv", i + 1);
            std::fs::write(&path, table.to_csv()).expect("write csv");
        }
    }
    if let Some(dir) = &csv_dir {
        println!("(CSV tables written to {dir}/)");
    }
}
