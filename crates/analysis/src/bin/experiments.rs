//! `ssmfp-experiments` — regenerates every table of `EXPERIMENTS.md`.
//!
//! Usage:
//!   `cargo run --release -p ssmfp-analysis --bin experiments [seed]`
//!   `cargo run --release -p ssmfp-analysis --bin experiments -- [seed] \
//!        --csv DIR --json FILE --threads N`
//!
//! With `--csv DIR`, every table is additionally written as a CSV file
//! (one per experiment) for plotting pipelines; with `--json FILE` the
//! whole suite is written as one JSON array of tables (`-` = stdout).
//! With `--threads N` the replicate sweeps fan out over N workers
//! (deterministic ordered merge: the tables are identical to a
//! single-threaded run; default: the machine's available parallelism).

use ssmfp_analysis::experiments::run_all_with;

fn die(msg: &str) -> ! {
    eprintln!("ssmfp-experiments: {msg}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut csv_dir: Option<String> = None;
    let mut json: Option<String> = None;
    let mut threads: Option<usize> = None;
    let mut seed: u64 = 2026;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .unwrap_or_else(|| die(&format!("{arg} needs a value")))
        };
        match arg.as_str() {
            "--csv" => csv_dir = Some(value()),
            "--json" => json = Some(value()),
            "--threads" => {
                threads = Some(
                    value()
                        .parse::<usize>()
                        .unwrap_or_else(|_| die("--threads takes a number"))
                        .max(1),
                )
            }
            "--version" => {
                println!("ssmfp-experiments {}", env!("CARGO_PKG_VERSION"));
                std::process::exit(0);
            }
            "--help" | "-h" => {
                println!("usage: ssmfp-experiments [seed] [--csv DIR] [--json FILE] [--threads N]");
                std::process::exit(0);
            }
            bare => match bare.parse() {
                Ok(s) => seed = s,
                Err(_) => die(&format!("unknown argument: {bare}")),
            },
        }
    }
    let threads = threads.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });
    println!("SSMFP experiment suite (seed {seed}, {threads} sweep threads)");
    println!("Reproduces: Cournier, Dubois, Villain — IPPS 2009, all figures & propositions.\n");
    let tables = run_all_with(seed, threads);
    for (i, table) in tables.iter().enumerate() {
        println!("{table}");
        if let Some(dir) = &csv_dir {
            std::fs::create_dir_all(dir)
                .unwrap_or_else(|e| die(&format!("cannot create {dir}: {e}")));
            let slug: String = table
                .title
                .chars()
                .take_while(|c| *c != ' ')
                .flat_map(|c| c.to_lowercase())
                .map(|c| if c.is_alphanumeric() { c } else { '_' })
                .collect();
            let path = format!("{dir}/{:02}_{slug}.csv", i + 1);
            std::fs::write(&path, table.to_csv())
                .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        }
    }
    if let Some(dir) = &csv_dir {
        println!("(CSV tables written to {dir}/)");
    }
    if let Some(path) = &json {
        let body = format!(
            "[\n  {}\n]\n",
            tables
                .iter()
                .map(|t| t.to_json())
                .collect::<Vec<_>>()
                .join(",\n  ")
        );
        if path == "-" {
            print!("{body}");
        } else {
            std::fs::write(path, body)
                .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
            println!("(JSON suite written to {path})");
        }
    }
}
