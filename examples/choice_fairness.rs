//! The §4 future-work knob, live: swapping the `choice_p(d)` selection
//! scheme. The paper's rotation queue and the longest-waiting variant are
//! both fair (bounded overtaking); the greedy scheme is not, and under
//! sustained competing traffic it starves the hub's own emission — the
//! paper's liveness argument made visible.
//!
//! Run with: `cargo run --release --example choice_fairness`

use ssmfp::analysis::experiments::choice_ablation::contention_run;
use ssmfp::core::choice::ChoiceStrategy;

fn main() {
    println!("star-6: three leaves flood one leaf through the hub (20 msgs each);");
    println!("the hub then asks to emit one message of its own.\n");
    println!(
        "{:<22} | {:>5} | {:>28} | {:>12} | {:>12}",
        "choice_p(d) scheme", "fair", "hub emission delay (rounds)", "total rounds", "exactly-once"
    );
    for (name, fair, strategy) in [
        ("rotation (paper)", true, ChoiceStrategy::RotationQueue),
        ("longest-waiting", true, ChoiceStrategy::LongestWaiting),
        ("greedy-first", false, ChoiceStrategy::GreedyFirst),
    ] {
        let r = contention_run(6, 20, strategy, 42);
        println!(
            "{:<22} | {:>5} | {:>28} | {:>12} | {:>12}",
            name, fair, r.hub_emission_delay, r.total_rounds, r.exactly_once
        );
    }
    println!(
        "\nok — the fairness of choice_p(d) is what carries SP's 'any message can be\n\
         generated in finite time'; the unfair scheme defers the hub behind the\n\
         entire competing backlog."
    );
}
