//! Regenerates the paper's **Figure 1** and **Figure 2** as Graphviz DOT
//! (pipe through `dot -Tpng` to get the drawings) on the paper's own
//! 4-node example network, plus the network itself.
//!
//! Run with: `cargo run --release --example regenerate_figures`

use ssmfp::buffer_graph::{destination_based, destination_based_dot, two_buffer, two_buffer_dot};
use ssmfp::topology::dot::graph_to_dot;
use ssmfp::topology::{gen, BfsTree};

fn main() {
    let g = gen::figure3_network();
    let trees: Vec<BfsTree> = (0..g.n()).map(|d| BfsTree::new(&g, d)).collect();

    println!("// --- the example network (a=0, b=1, c=2, d=3) ---");
    print!("{}", graph_to_dot(&g, "network"));

    println!("\n// --- Figure 1: destination-based buffer graph, destination b=1 ---");
    let fig1 = destination_based(&trees);
    assert!(fig1.is_acyclic());
    print!("{}", destination_based_dot(&fig1, "figure1", Some(1)));

    println!("\n// --- Figure 2: SSMFP two-buffer graph, destination b=1 ---");
    let fig2 = two_buffer(&trees);
    assert!(fig2.is_acyclic());
    print!("{}", two_buffer_dot(&fig2, "figure2", 1));

    println!("\n// both graphs verified acyclic (Merlin–Schweitzer deadlock-freedom)");
}
