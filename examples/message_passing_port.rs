//! The §4 open problem, live: SSMFP's forwarding core running over an
//! asynchronous message-passing network (FIFO channels, adversarial
//! scheduler) instead of shared memory — with corrupted routing tables,
//! garbage handshake messages pre-loaded on the wires, and garbage in the
//! buffers.
//!
//! Run with: `cargo run --release --example message_passing_port`

use ssmfp::mp::{MpConfig, PortNetwork};
use ssmfp::topology::gen;

fn main() {
    println!("SSMFP → message passing (three-way handshake port)\n");
    println!(
        "{:<34} | {:>5} | {:>12} | {:>5} | {:>5} | {:>10}",
        "scenario", "sent", "exactly-once", "lost", "dup", "steps"
    );
    let scenarios: [(&str, u8, usize, usize); 5] = [
        ("clean", 0, 0, 0),
        ("corrupted tables (self-repair)", 1, 0, 0),
        ("corrupted + 24 wire garbage msgs", 1, 24, 0),
        ("corrupted + wire + buffer garbage", 1, 24, 3),
        ("distance-vector layer, garbage init", 2, 12, 2),
    ];
    for (name, mode, wire, buffers) in scenarios {
        let graph = gen::grid(2, 3);
        let n = graph.n();
        let config = MpConfig {
            seed: 11,
            timeout_bias: 0.3,
        };
        let mut net = match mode {
            0 => PortNetwork::new(graph, config, false, 0, wire, buffers),
            1 => PortNetwork::new(graph, config, true, 10, wire, buffers),
            _ => PortNetwork::new_dv(graph, config, true, wire, buffers),
        };
        let mut ghosts = Vec::new();
        for s in 0..n {
            for d in 0..n {
                if s != d {
                    ghosts.push(net.send(s, d, ((s + d) % 8) as u64));
                }
            }
        }
        let quiescent = net.run_to_quiescence(10_000_000);
        assert!(quiescent, "{name}: port must drain");
        let audit = net.audit();
        println!(
            "{:<34} | {:>5} | {:>12} | {:>5} | {:>5} | {:>10}",
            name,
            audit.generated,
            audit.exactly_once,
            audit.lost,
            audit.duplicated,
            net.net().steps()
        );
        assert_eq!(audit.exactly_once, ghosts.len() as u64, "{name}");
    }
    println!("\nok — the handshake port preserved exactly-once delivery in every tested schedule");
    println!("(empirical only: the paper's state-model → message-passing problem remains open)");
}
