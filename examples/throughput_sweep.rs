//! Proposition 7 live: amortized rounds per delivery under a flood
//! workload, swept over the diameter. The paper's bound is `3D` per
//! delivery (amortized `Θ(max(R_A, D))`); the sweep shows the measured
//! ratio hugging a small constant ≈ 3 while the *worst-case* bound of
//! Proposition 5 (`Δ^D`) explodes — the gap the paper's amortized analysis
//! exists to close.
//!
//! Run with: `cargo run --release --example throughput_sweep`

use ssmfp::analysis::experiments::prop7::flood_run;
use ssmfp::analysis::workload::line_family;
use ssmfp::routing::CorruptionKind;

fn main() {
    println!("flood workload: every node sends 3 messages to node 0 (lines, Δ=2)\n");
    println!(
        "{:>6} | {:>4} | {:>10} | {:>10} | {:>15} | {:>8} | {:>12}",
        "n", "D", "deliveries", "rounds", "rounds/delivery", "3D", "Δ^D (Prop 5)"
    );
    for topo in line_family(&[4, 6, 8, 12, 16, 20]) {
        for corruption in [CorruptionKind::None, CorruptionKind::RandomGarbage] {
            let r = flood_run(&topo, 3, corruption, 11);
            println!(
                "{:>6} | {:>4} | {:>10} | {:>10} | {:>15.2} | {:>8} | {:>12} {}",
                topo.metrics.n(),
                topo.metrics.diameter(),
                r.delivered,
                r.rounds,
                r.amortized,
                r.bound_3d,
                topo.metrics.delta_pow_d(),
                if corruption == CorruptionKind::None {
                    "(clean)"
                } else {
                    "(corrupted)"
                },
            );
        }
    }
    println!("\nok — amortized cost is Θ(D)-flat per delivery, far below the worst-case Δ^D");
}
