//! Walkthrough of the paper's **Figure 3** example execution: 4 processors
//! `a, b, c, d` (Δ = 3, colors {0..3}), a routing cycle between `a` and
//! `c`, an invalid message in `b`'s reception buffer, and two valid
//! messages — one sharing the invalid one's useful information.
//!
//! Run with: `cargo run --release --example figure3_walkthrough`

use ssmfp::core::api::DaemonKind;
use ssmfp::core::replay::{figure3_network_setup, run_figure3, A, B, C};
use ssmfp::kernel::StepOutcome;

fn buffer_str(m: &Option<ssmfp::core::Message>) -> String {
    match m {
        Some(m) => format!("({},{},{})", m.payload, m.last_hop, m.color.0),
        None => "  —  ".to_string(),
    }
}

fn main() {
    println!("Figure 3 network: a=0, b=1, c=2, d=3; destination component b\n");

    // Step-by-step view of the first configurations under the weakly fair
    // daemon (buffers of destination b only, as in the figure).
    let (mut net, m, m2) = figure3_network_setup(DaemonKind::RoundRobin, true);
    println!("ghosts: m={m:?} (payload 200), m''={m2:?} (payload 100, same as invalid m')\n");
    println!("step | a:R / a:E           | b:R / b:E           | c:R / c:E           | a→ c→");
    for step in 0..16 {
        let states = net.states();
        println!(
            "{:>4} | {:>9} {:>9} | {:>9} {:>9} | {:>9} {:>9} | {} {}",
            step,
            buffer_str(&states[A].slots[B].buf_r),
            buffer_str(&states[A].slots[B].buf_e),
            buffer_str(&states[B].slots[B].buf_r),
            buffer_str(&states[B].slots[B].buf_e),
            buffer_str(&states[C].slots[B].buf_r),
            buffer_str(&states[C].slots[B].buf_e),
            states[A].routing.parent[B],
            states[C].routing.parent[B],
        );
        if let StepOutcome::Terminal = net.pump() {
            println!("(terminal)");
            break;
        }
    }
    println!(
        "\ndeliveries: m={}, m''={}, invalid@b={}",
        net.deliveries_of(m),
        net.deliveries_of(m2),
        net.ledger().invalid_delivered_at(B)
    );

    // The figure's hazards need an unfair schedule (our routing algorithm
    // repairs faster than the paper's abstract A): starve b and delay the
    // corrections.
    println!("\n--- unfair daemon (b starved, slow-A emulation) ---");
    for seed in 0..10 {
        let r = run_figure3(
            DaemonKind::AdversarialRandomAction {
                seed,
                victims: vec![B],
            },
            false,
            4_000,
        );
        if r.forwarded_under_cycle || r.same_payload_coexisted {
            println!(
                "seed {seed}: forwarded-under-cycle={} same-payload-coexisted={} \
                 (m delivered {}×, m'' {}×, SP violations {})",
                r.forwarded_under_cycle,
                r.same_payload_coexisted,
                r.m_deliveries,
                r.m_prime_valid_deliveries,
                r.violations
            );
        }
    }
    println!("\nok — colors kept the same-payload messages apart in every schedule");
}
