//! Sending *before* the routing tables are usable: the headline capability
//! of the paper. Every corruption family is tried; the self-stabilizing
//! routing algorithm `A` repairs the tables while SSMFP already forwards,
//! and every message still arrives exactly once.
//!
//! Run with: `cargo run --release --example corrupted_routing`

use ssmfp::core::{DaemonKind, Network, NetworkConfig};
use ssmfp::routing::{routing_is_correct, CorruptionKind, RoutingState};
use ssmfp::topology::gen;

fn main() {
    let graph = gen::grid(3, 3);
    println!(
        "grid 3×3 (n=9, Δ={}, D={}), messages sent at step 0 under every corruption family\n",
        graph.max_degree(),
        ssmfp::topology::GraphMetrics::new(&graph).diameter()
    );
    println!(
        "{:<10} | {:>14} | {:>12} | {:>12} | {:>9} | {:>10}",
        "tables", "tables correct", "sent", "exact-once", "rounds", "violations"
    );
    for corruption in [
        CorruptionKind::None,
        CorruptionKind::RandomGarbage,
        CorruptionKind::ParentCycles,
        CorruptionKind::AntiDistance,
        CorruptionKind::AllZero,
    ] {
        let config = NetworkConfig {
            daemon: DaemonKind::CentralRandom { seed: 7 },
            corruption,
            garbage_fill: 0.3,
            seed: 7,
            routing_priority: true,
            choice_strategy: Default::default(),
            seeded_bug: None,
        };
        let mut net = Network::new(graph.clone(), config);
        let initially_correct = {
            let routing: Vec<RoutingState> =
                net.states().iter().map(|s| s.routing.clone()).collect();
            routing_is_correct(&graph, &routing)
        };
        // Send all-pairs traffic immediately — no waiting for repair.
        let mut ghosts = Vec::new();
        for s in 0..graph.n() {
            for d in 0..graph.n() {
                if s != d {
                    ghosts.push(net.send(s, d, ((s * 7 + d) % 8) as u64));
                }
            }
        }
        let drained = net.run_to_quiescence(50_000_000);
        assert!(drained, "network must drain");
        let exact_once = ghosts
            .iter()
            .filter(|g| net.deliveries_of(**g) == 1)
            .count();
        let violations = net.check_sp();
        println!(
            "{:<10} | {:>14} | {:>12} | {:>12} | {:>9} | {:>10}",
            corruption.label(),
            initially_correct,
            ghosts.len(),
            exact_once,
            net.rounds(),
            violations.len()
        );
        assert_eq!(exact_once, ghosts.len(), "exactly-once must hold");
        assert!(violations.is_empty());
        // After quiescence the tables are correct — A is silent and done.
        let routing: Vec<RoutingState> = net.states().iter().map(|s| s.routing.clone()).collect();
        assert!(routing_is_correct(&graph, &routing));
    }
    println!("\nok — exactly-once delivery regardless of the initial routing tables");
}
