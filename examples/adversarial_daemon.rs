//! Daemon stress: the same workload under every scheduler the model
//! allows, from synchronous to unfair. Under any *fair* daemon SSMFP
//! satisfies SP; under the unfair daemon liveness may be lost (a starved
//! destination never consumes) but safety — no loss, no duplication — must
//! still hold for whatever was delivered.
//!
//! Run with: `cargo run --release --example adversarial_daemon`

use ssmfp::core::{DaemonKind, Network, NetworkConfig};
use ssmfp::topology::gen;

fn main() {
    let graph = gen::random_connected(10, 6, 13);
    let daemons: Vec<(&str, DaemonKind, bool)> = vec![
        ("synchronous", DaemonKind::Synchronous, true),
        ("round-robin", DaemonKind::RoundRobin, true),
        (
            "central-random",
            DaemonKind::CentralRandom { seed: 3 },
            true,
        ),
        (
            "distributed(p=.4)",
            DaemonKind::DistributedRandom {
                seed: 3,
                p_move: 0.4,
            },
            true,
        ),
        (
            "unfair(starve 0,1)",
            DaemonKind::Adversarial {
                seed: 3,
                victims: vec![0, 1],
            },
            false,
        ),
    ];
    println!(
        "random graph n=10; all-pairs workload from an adversarial start (garbage fill 0.4)\n"
    );
    println!(
        "{:<18} | {:>6} | {:>10} | {:>8} | {:>10} | {:>10}",
        "daemon", "fair", "delivered", "dup/lost", "steps", "quiescent"
    );
    for (name, daemon, fair) in daemons {
        let config = NetworkConfig {
            daemon,
            corruption: ssmfp::routing::CorruptionKind::RandomGarbage,
            garbage_fill: 0.4,
            seed: 21,
            routing_priority: true,
            choice_strategy: Default::default(),
            seeded_bug: None,
        };
        let mut net = Network::new(graph.clone(), config);
        let mut ghosts = Vec::new();
        for s in 0..graph.n() {
            for d in 0..graph.n() {
                if s != d {
                    ghosts.push(net.send(s, d, ((s + d) % 8) as u64));
                }
            }
        }
        let quiescent = net.run_to_quiescence(2_000_000);
        let delivered = ghosts
            .iter()
            .filter(|g| net.deliveries_of(**g) == 1)
            .count();
        // Safety: nothing duplicated, nothing lost (undelivered messages
        // must still exist somewhere in the system).
        let violations = net.check_sp();
        println!(
            "{:<18} | {:>6} | {:>7}/{:<3} | {:>8} | {:>10} | {:>10}",
            name,
            fair,
            delivered,
            ghosts.len(),
            violations.len(),
            net.steps(),
            quiescent
        );
        assert!(
            violations.is_empty(),
            "{name}: safety violated: {violations:?}"
        );
        if fair {
            assert_eq!(
                delivered,
                ghosts.len(),
                "{name}: fair daemon must deliver all"
            );
        }
    }
    println!("\nok — SP under every fair daemon; safety even under the unfair one");
}
