//! The substrate story (§2.2): why buffer graphs exist at all.
//!
//! 1. A cyclic buffer graph deadlocks under saturation (negative control).
//! 2. The Figure 1 destination-based scheme (acyclic) drains any load.
//! 3. The §4 acyclic-orientation covers drain with only 3 buffers per node
//!    on a ring and 2 on a tree.
//! 4. SSMFP itself, saturated with garbage in **every** buffer plus live
//!    all-pairs traffic, still drains — its Figure 2 scheme plus rules
//!    R4/R5 keep the system deadlock-free even while routing is corrupted.
//!
//! Run with: `cargo run --release --example deadlock_freedom`

use rand::SeedableRng;
use ssmfp::buffer_graph::sim::{DrainOutcome, StoreForward};
use ssmfp::buffer_graph::{destination_based, ring_cover, BufferGraph, BufferId};
use ssmfp::core::{Network, NetworkConfig};
use ssmfp::topology::{gen, BfsTree};

fn main() {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);

    // 1. Cyclic buffer graph: classic circular wait.
    let mut bg = BufferGraph::new(3, 1);
    let b = |p: usize| BufferId::new(p, 0);
    bg.add_move(b(0), b(1));
    bg.add_move(b(1), b(2));
    bg.add_move(b(2), b(0));
    let mut sim = StoreForward::new(bg);
    sim.inject(0, vec![b(0), b(1), b(2)]);
    sim.inject(1, vec![b(1), b(2), b(0)]);
    sim.inject(2, vec![b(2), b(0), b(1)]);
    let outcome = sim.drain(&mut rng, 10_000);
    println!("cyclic 3-ring of buffers, saturated:      {outcome:?}");
    assert!(matches!(outcome, DrainOutcome::Deadlock { .. }));

    // 2. Figure 1 scheme on a grid, saturated with all-pairs tokens.
    let g = gen::grid(3, 3);
    let trees: Vec<BfsTree> = (0..g.n()).map(|d| BfsTree::new(&g, d)).collect();
    let mut sim = StoreForward::new(destination_based(&trees));
    let mut id = 0;
    for s in 0..g.n() {
        for (d, tree) in trees.iter().enumerate() {
            if s != d {
                let route: Vec<BufferId> = tree
                    .path_to_root(s)
                    .into_iter()
                    .map(|p| BufferId::new(p, d))
                    .collect();
                sim.inject(id, route);
                id += 1;
            }
        }
    }
    let outcome = sim.drain(&mut rng, 1_000_000);
    println!("Figure 1 scheme, grid 3×3, all-pairs:     {outcome:?}");
    assert!(matches!(outcome, DrainOutcome::Drained { .. }));

    // 3. §4 cover on a ring: 3 buffers per node, still deadlock-free.
    let n = 9;
    let g = gen::ring(n);
    let cover = ring_cover(n);
    let mut sim = StoreForward::new(cover.buffer_graph(&g));
    let mut id = 0;
    for d in 0..n {
        let tree = BfsTree::new(&g, d);
        for s in 0..n {
            if s == d {
                continue;
            }
            let nodes = tree.path_to_root(s);
            let classes = cover.schedule_route(&nodes).expect("ring rank is 3");
            let mut route = vec![BufferId::new(nodes[0], classes[0])];
            for (i, &node) in nodes.iter().enumerate().skip(1) {
                route.push(BufferId::new(node, classes[i - 1]));
            }
            sim.inject(id, route);
            id += 1;
        }
    }
    let outcome = sim.drain(&mut rng, 1_000_000);
    println!("§4 ring cover (3 buf/node), all-pairs:    {outcome:?}");
    assert!(matches!(outcome, DrainOutcome::Drained { .. }));

    // 4. SSMFP under maximum pressure: every buffer pre-filled with an
    //    invalid message, corrupted tables, live all-pairs traffic.
    let g = gen::ring(6);
    let mut net = Network::new(
        g.clone(),
        NetworkConfig::adversarial(9).with_garbage_fill(1.0),
    );
    println!(
        "SSMFP ring-6: {} buffers all full + corrupted tables + all-pairs traffic ...",
        net.messages_in_flight()
    );
    let mut ghosts = Vec::new();
    for s in 0..g.n() {
        for d in 0..g.n() {
            if s != d {
                ghosts.push(net.send(s, d, ((s + d) % 8) as u64));
            }
        }
    }
    let drained = net.run_to_quiescence(50_000_000);
    let ok = ghosts.iter().all(|g| net.deliveries_of(*g) == 1);
    println!(
        "SSMFP drained: {drained}; every valid message exactly once: {ok}; SP violations: {}",
        net.check_sp().len()
    );
    assert!(drained && ok && net.check_sp().is_empty());
    println!(
        "\nok — acyclicity (or SSMFP's erasure rules) is what stands between you and deadlock"
    );
}
