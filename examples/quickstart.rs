//! Quickstart: build a network, send a message, watch it arrive — then do
//! the same from a fully corrupted initial configuration.
//!
//! Run with: `cargo run --release --example quickstart`

use ssmfp::core::{Network, NetworkConfig};
use ssmfp::topology::gen;

fn main() {
    // 1. A clean 6-node ring: correct routing tables, empty buffers.
    let mut net = Network::new(gen::ring(6), NetworkConfig::clean());
    let msg = net.send(0, 3, 0xC0FFEE);
    let rounds = net
        .run_until_delivered(msg, 1_000_000)
        .expect("delivered on a clean network");
    println!("clean ring-6:   message 0 → 3 delivered after {rounds} rounds");
    assert_eq!(net.deliveries_of(msg), 1);

    // 2. The snap-stabilization gauntlet: random-garbage routing tables and
    //    invalid messages pre-loaded into half the buffers. The protocol
    //    still delivers the message exactly once — no stabilization phase.
    let mut net = Network::new(gen::ring(6), NetworkConfig::adversarial(42));
    println!(
        "adversarial:    starting with {} invalid messages in buffers",
        net.messages_in_flight()
    );
    let msg = net.send(0, 3, 0xC0FFEE);
    let rounds = net
        .run_until_delivered(msg, 10_000_000)
        .expect("snap-stabilization: delivered despite corruption");
    println!("adversarial:    message 0 → 3 delivered after {rounds} rounds");
    assert_eq!(net.deliveries_of(msg), 1);

    // 3. The full Specification SP audit: exactly-once for every valid
    //    message, ≤ 2n invalid deliveries per destination (Proposition 4).
    net.run_to_quiescence(10_000_000);
    let violations = net.check_sp();
    println!(
        "audit:          {} SP violations, {} invalid deliveries total (bound per dest: {})",
        violations.len(),
        net.ledger().invalid_delivered_count(),
        2 * net.graph().n()
    );
    assert!(violations.is_empty());
    println!("ok");
}
