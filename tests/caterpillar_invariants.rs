//! Structural invariants along executions: Definition 3 coverage, color
//! domains, choice pointers, and the Lemma 1 caterpillar life cycle.

use proptest::prelude::*;
use ssmfp::core::caterpillar::{classify_r_buffer, RBufferRole};
use ssmfp::core::{classify_buffers, DaemonKind, Network, NetworkConfig};
use ssmfp::routing::CorruptionKind;
use ssmfp::topology::gen;

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// At every configuration of any execution: no orphaned buffer, every
    /// color within {0..Δ}, every last-hop within N_p ∪ {p}, and every
    /// choice pointer within 0..=deg(p).
    #[test]
    fn structural_invariants_along_execution(
        n in 3usize..8,
        seed in any::<u64>(),
        garbage in 0.0f64..1.0,
    ) {
        let graph = gen::random_connected(n, n / 2, seed);
        let delta = graph.max_degree() as u8;
        let config = NetworkConfig {
            daemon: DaemonKind::CentralRandom { seed },
            corruption: CorruptionKind::RandomGarbage,
            garbage_fill: garbage,
            seed,
            routing_priority: true,
            choice_strategy: Default::default(),
            seeded_bug: None,
        };
        let mut net = Network::new(graph.clone(), config);
        for s in 0..n {
            net.send(s, (s + 1) % n, s as u64 % 8);
        }
        for _ in 0..400 {
            let census = classify_buffers(&graph, net.states());
            prop_assert_eq!(census.orphans, 0);
            for (p, s) in net.states().iter().enumerate() {
                for (d, slot) in s.slots.iter().enumerate() {
                    let _ = d;
                    prop_assert!(slot.choice_ptr <= graph.degree(p));
                    for m in [&slot.buf_r, &slot.buf_e].into_iter().flatten() {
                        prop_assert!(m.color.0 <= delta, "color out of domain");
                        prop_assert!(
                            m.last_hop == p || graph.has_edge(p, m.last_hop),
                            "last hop out of domain"
                        );
                    }
                }
            }
            if let ssmfp::kernel::StepOutcome::Terminal = net.pump() {
                break;
            }
        }
    }
}

/// Lemma 1's life cycle, observed: a freshly generated message starts as a
/// type-1 caterpillar in its source's reception buffer.
#[test]
fn generated_message_starts_as_type1() {
    let graph = gen::line(4);
    let mut net = Network::new(graph.clone(), NetworkConfig::clean());
    let ghost = net.send(0, 3, 5);
    // Pump until the generation event fires.
    for _ in 0..100 {
        net.pump();
        if net.ledger().generation_of(ghost).is_some() {
            break;
        }
    }
    let states = net.states();
    // Right after generation the message is alone in bufR_0(3).
    if let Some(m) = &states[0].slots[3].buf_r {
        assert_eq!(m.ghost, ghost);
        assert_eq!(
            classify_r_buffer(&graph, states, 0, 3),
            Some(RBufferRole::Type1Head)
        );
    } else {
        // The engine may already have moved it; it must then be in bufE.
        assert!(states[0].slots[3].buf_e.is_some());
    }
}

/// Buffer occupancy is conserved between steps except through the six
/// rules: any decrease in message population is accounted for by delivery
/// or duplicate/copy erasure events.
#[test]
fn population_changes_are_event_accounted() {
    let graph = gen::ring(5);
    let mut net = Network::new(graph, NetworkConfig::adversarial(3));
    for s in 0..5 {
        net.send(s, (s + 2) % 5, s as u64 % 8);
    }
    let mut prev_pop = net.messages_in_flight();
    let mut prev_counts = (
        net.ledger().generated_count(),
        net.ledger().valid_delivered_count() + net.ledger().invalid_delivered_count(),
        net.ledger().erases_after_copy,
        net.ledger().duplicate_erases,
        net.ledger().forwards,
    );
    for _ in 0..2_000 {
        if let ssmfp::kernel::StepOutcome::Terminal = net.pump() {
            break;
        }
        let pop = net.messages_in_flight();
        let counts = (
            net.ledger().generated_count(),
            net.ledger().valid_delivered_count() + net.ledger().invalid_delivered_count(),
            net.ledger().erases_after_copy,
            net.ledger().duplicate_erases,
            net.ledger().forwards,
        );
        let gained = (counts.0 - prev_counts.0) + (counts.4 - prev_counts.4);
        let lost =
            (counts.1 - prev_counts.1) + (counts.2 - prev_counts.2) + (counts.3 - prev_counts.3);
        let expected = prev_pop as i64 + gained as i64 - lost as i64;
        assert_eq!(
            pop as i64, expected,
            "population change unaccounted: prev={prev_pop} now={pop} gained={gained} lost={lost}"
        );
        prev_pop = pop;
        prev_counts = counts;
    }
}
