//! The flagship end-to-end property: **snap-stabilization** (Proposition 3).
//!
//! From *any* initial configuration — any corruption family, any garbage
//! fill, any fair daemon, any topology in the suite — every valid message
//! is delivered once and only once, invalid deliveries respect the 2n
//! bound, and the network drains.

use proptest::prelude::*;
use ssmfp::core::{DaemonKind, Network, NetworkConfig};
use ssmfp::routing::CorruptionKind;
use ssmfp::topology::{gen, Graph};

fn arb_graph() -> impl Strategy<Value = Graph> {
    prop_oneof![
        (3usize..9).prop_map(gen::ring),
        (2usize..9).prop_map(gen::line),
        (3usize..9).prop_map(gen::star),
        (4usize..10).prop_map(|n| gen::kary_tree(n, 2)),
        ((4usize..10), (0usize..6), any::<u64>())
            .prop_map(|(n, extra, seed)| gen::random_connected(n, extra, seed)),
    ]
}

fn arb_corruption() -> impl Strategy<Value = CorruptionKind> {
    prop_oneof![
        Just(CorruptionKind::None),
        Just(CorruptionKind::RandomGarbage),
        Just(CorruptionKind::ParentCycles),
        Just(CorruptionKind::AntiDistance),
        Just(CorruptionKind::AllZero),
    ]
}

fn arb_daemon() -> impl Strategy<Value = DaemonKind> {
    prop_oneof![
        Just(DaemonKind::Synchronous),
        Just(DaemonKind::RoundRobin),
        any::<u64>().prop_map(|seed| DaemonKind::CentralRandom { seed }),
        any::<u64>().prop_map(|seed| DaemonKind::DistributedRandom { seed, p_move: 0.5 }),
        any::<u64>().prop_map(|seed| DaemonKind::LocallyCentral { seed }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        ..ProptestConfig::default()
    })]

    /// SP holds from any configuration under any fair daemon.
    #[test]
    fn sp_holds_from_any_configuration(
        graph in arb_graph(),
        corruption in arb_corruption(),
        daemon in arb_daemon(),
        garbage in 0.0f64..1.0,
        seed in any::<u64>(),
        sends in proptest::collection::vec((any::<u16>(), any::<u16>(), 0u64..8), 1..12),
    ) {
        let n = graph.n();
        let config = NetworkConfig {
            daemon,
            corruption,
            garbage_fill: garbage,
            seed,
            routing_priority: true,
            choice_strategy: Default::default(),
            seeded_bug: None,
        };
        let mut net = Network::new(graph, config);
        let ghosts: Vec<_> = sends
            .iter()
            .map(|&(s, d, p)| net.send(s as usize % n, d as usize % n, p))
            .collect();
        let drained = net.run_to_quiescence(40_000_000);
        prop_assert!(drained, "network failed to drain");
        for g in &ghosts {
            prop_assert_eq!(net.deliveries_of(*g), 1, "not exactly-once: {:?}", g);
        }
        let violations = net.check_sp();
        prop_assert!(violations.is_empty(), "SP violations: {violations:?}");
        // Proposition 4 bound per destination.
        for d in 0..n {
            prop_assert!(net.ledger().invalid_delivered_at(d) <= 2 * n as u64);
        }
    }

    /// Generation is always possible in finite time (SP's first property):
    /// even with every buffer pre-filled, each requested message is
    /// eventually generated.
    #[test]
    fn generation_in_finite_time_under_full_garbage(
        n in 3usize..8,
        seed in any::<u64>(),
    ) {
        let graph = gen::ring(n);
        let config = NetworkConfig {
            daemon: DaemonKind::CentralRandom { seed },
            corruption: CorruptionKind::RandomGarbage,
            garbage_fill: 1.0,
            seed,
            routing_priority: true,
            choice_strategy: Default::default(),
            seeded_bug: None,
        };
        let mut net = Network::new(graph, config);
        let ghosts: Vec<_> = (0..n).map(|s| net.send(s, (s + 1) % n, s as u64 % 8)).collect();
        net.run_to_quiescence(40_000_000);
        for g in &ghosts {
            prop_assert!(
                net.ledger().generation_of(*g).is_some(),
                "message never generated: {g:?}"
            );
            prop_assert_eq!(net.deliveries_of(*g), 1);
        }
    }
}

/// Determinism: identical config + seed ⇒ identical execution.
#[test]
fn runs_are_reproducible() {
    let run = || {
        let mut net = Network::new(gen::grid(3, 3), NetworkConfig::adversarial(77));
        let mut ghosts = Vec::new();
        for s in 0..9 {
            ghosts.push(net.send(s, (s + 4) % 9, s as u64));
        }
        net.run_to_quiescence(10_000_000);
        (
            net.steps(),
            net.rounds(),
            net.ledger().invalid_delivered_count(),
            ghosts
                .iter()
                .map(|g| net.deliveries_of(*g))
                .collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(), run());
}

/// The unfair daemon may stall liveness but can never break safety.
#[test]
fn unfair_daemon_preserves_safety() {
    for seed in 0..6 {
        let config = NetworkConfig {
            daemon: DaemonKind::Adversarial {
                seed,
                victims: vec![0],
            },
            corruption: CorruptionKind::RandomGarbage,
            garbage_fill: 0.5,
            seed,
            routing_priority: true,
            choice_strategy: Default::default(),
            seeded_bug: None,
        };
        let mut net = Network::new(gen::ring(6), config);
        let mut ghosts = Vec::new();
        for s in 1..6 {
            ghosts.push(net.send(s, 0, s as u64)); // all toward the victim
        }
        net.run_to_quiescence(300_000);
        // Whatever was (or wasn't) delivered: no duplicates, no losses.
        let violations = net.check_sp();
        assert!(violations.is_empty(), "seed {seed}: {violations:?}");
        for g in &ghosts {
            assert!(net.deliveries_of(*g) <= 1, "duplicate under unfair daemon");
        }
    }
}
