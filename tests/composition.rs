//! Cross-crate composition tests: SSMFP × routing algorithm `A` under the
//! paper's priority rule, and the buffer-graph view of the live network.

use ssmfp::buffer_graph::{two_buffer, two_buffer_from_fn};
use ssmfp::core::{DaemonKind, Network, NetworkConfig};
use ssmfp::routing::{next_hop, routing_is_correct, CorruptionKind, RoutingState};
use ssmfp::topology::{gen, BfsTree};

fn routing_of(net: &Network) -> Vec<RoutingState> {
    net.states().iter().map(|s| s.routing.clone()).collect()
}

/// Quiescence implies the routing tables converged to the exact BFS
/// distances with smallest-identity parents (`A` silent ⇒ tables correct).
#[test]
fn quiescence_implies_correct_tables() {
    for corruption in CorruptionKind::ADVERSARIAL {
        let graph = gen::random_connected(9, 5, 8);
        let config = NetworkConfig {
            daemon: DaemonKind::CentralRandom { seed: 4 },
            corruption,
            garbage_fill: 0.3,
            seed: 4,
            routing_priority: true,
            choice_strategy: Default::default(),
            seeded_bug: None,
        };
        let mut net = Network::new(graph.clone(), config);
        net.send(0, 8, 5);
        assert!(net.run_to_quiescence(20_000_000), "{corruption:?}");
        assert!(
            routing_is_correct(&graph, &routing_of(&net)),
            "{corruption:?}: tables must be correct at quiescence"
        );
    }
}

/// With priority on, a processor whose routing entry is wrong never fires a
/// forwarding rule before fixing it: we verify via the engine's enabled
/// actions at every step of a corrupted run.
#[test]
fn routing_priority_is_enforced_stepwise() {
    use ssmfp::core::SsmfpAction;
    let graph = gen::ring(6);
    let config = NetworkConfig {
        daemon: DaemonKind::RoundRobin,
        corruption: CorruptionKind::AllZero,
        garbage_fill: 0.2,
        seed: 9,
        routing_priority: true,
        choice_strategy: Default::default(),
        seeded_bug: None,
    };
    let mut net = Network::new(graph, config);
    net.send(0, 3, 1);
    for _ in 0..2_000 {
        // Invariant: for every processor, if any routing action is enabled,
        // no forwarding action is listed.
        for p in 0..net.graph().n() {
            let actions = net.engine().enabled_actions_of(p);
            let has_routing = actions.iter().any(|a| matches!(a, SsmfpAction::Routing(_)));
            let has_fwd = actions.iter().any(|a| matches!(a, SsmfpAction::Fwd(_)));
            assert!(
                !(has_routing && has_fwd),
                "processor {p} exposes forwarding actions while A is enabled"
            );
        }
        if let ssmfp::kernel::StepOutcome::Terminal = net.pump() {
            break;
        }
    }
}

/// The two-buffer graph induced by the *converged* network tables equals
/// the one built directly from the BFS trees (Figure 2 is what the live
/// system actually runs on after repair).
#[test]
fn converged_tables_induce_the_figure2_buffer_graph() {
    let graph = gen::grid(3, 3);
    let config = NetworkConfig {
        daemon: DaemonKind::CentralRandom { seed: 2 },
        corruption: CorruptionKind::RandomGarbage,
        garbage_fill: 0.0,
        seed: 2,
        routing_priority: true,
        choice_strategy: Default::default(),
        seeded_bug: None,
    };
    let mut net = Network::new(graph.clone(), config);
    assert!(net.run_to_quiescence(10_000_000));
    let routing = routing_of(&net);
    let from_tables = two_buffer_from_fn(graph.n(), |p, d| next_hop(&routing, p, d));
    let trees: Vec<BfsTree> = (0..graph.n()).map(|d| BfsTree::new(&graph, d)).collect();
    let from_trees = two_buffer(&trees);
    for p in 0..graph.n() {
        for slot in 0..2 * graph.n() {
            let b = ssmfp::buffer_graph::BufferId::new(p, slot);
            let mut a: Vec<_> = from_tables.moves_from(b).collect();
            let mut c: Vec<_> = from_trees.moves_from(b).collect();
            a.sort_unstable();
            c.sort_unstable();
            assert_eq!(a, c, "buffer {b:?}");
        }
    }
    assert!(from_tables.is_acyclic());
}

/// Ablation: without the priority of `A`, SP still holds under fair
/// daemons in practice (the proofs need the priority; the implementation
/// tolerates its absence on these workloads — worth pinning down).
#[test]
fn without_priority_sp_still_holds_on_suite() {
    for seed in 0..4 {
        let config = NetworkConfig {
            daemon: DaemonKind::CentralRandom { seed },
            corruption: CorruptionKind::RandomGarbage,
            garbage_fill: 0.4,
            seed,
            routing_priority: false,
            choice_strategy: Default::default(),
            seeded_bug: None,
        };
        let mut net = Network::new(gen::ring(6), config);
        let mut ghosts = Vec::new();
        for s in 0..6 {
            ghosts.push(net.send(s, (s + 2) % 6, s as u64));
        }
        assert!(net.run_to_quiescence(20_000_000), "seed {seed}");
        for g in &ghosts {
            assert_eq!(net.deliveries_of(*g), 1, "seed {seed}");
        }
        assert!(net.check_sp().is_empty(), "seed {seed}");
    }
}

/// Messages sent *while* the tables are being repaired still arrive: send
/// in mid-flight waves rather than all at the start.
#[test]
fn staggered_sends_during_repair() {
    let graph = gen::grid(3, 3);
    let config = NetworkConfig {
        daemon: DaemonKind::CentralRandom { seed: 6 },
        corruption: CorruptionKind::AntiDistance,
        garbage_fill: 0.3,
        seed: 6,
        routing_priority: true,
        choice_strategy: Default::default(),
        seeded_bug: None,
    };
    let mut net = Network::new(graph, config);
    let mut ghosts = Vec::new();
    for wave in 0..5 {
        ghosts.push(net.send(wave, 8 - wave, wave as u64));
        for _ in 0..20 {
            if let ssmfp::kernel::StepOutcome::Terminal = net.pump() {
                break;
            }
        }
    }
    assert!(net.run_to_quiescence(20_000_000));
    for g in &ghosts {
        assert_eq!(net.deliveries_of(*g), 1);
    }
    assert!(net.check_sp().is_empty());
}
