//! Cross-model comparison: the state-model SSMFP and its message-passing
//! port run the same workloads; both must deliver exactly once, and their
//! relative costs characterize what the model switch buys and costs.

use ssmfp::core::{DaemonKind, Network, NetworkConfig};
use ssmfp::mp::{MpConfig, PortNetwork};
use ssmfp::topology::gen;

/// Same all-pairs workload on both models, clean start: both exactly-once.
#[test]
fn both_models_exactly_once_clean() {
    let graph = gen::ring(5);
    let n = graph.n();

    // State model.
    let mut sm = Network::new(
        graph.clone(),
        NetworkConfig::clean().with_daemon(DaemonKind::CentralRandom { seed: 4 }),
    );
    let mut sm_ghosts = Vec::new();
    for s in 0..n {
        for d in 0..n {
            if s != d {
                sm_ghosts.push(sm.send(s, d, ((s + d) % 8) as u64));
            }
        }
    }
    assert!(sm.run_to_quiescence(10_000_000));
    for g in &sm_ghosts {
        assert_eq!(sm.deliveries_of(*g), 1);
    }
    assert!(sm.check_sp().is_empty());

    // Message-passing port.
    let mut mp = PortNetwork::new(
        graph,
        MpConfig {
            seed: 4,
            timeout_bias: 0.3,
        },
        false,
        0,
        0,
        0,
    );
    let mut mp_ghosts = Vec::new();
    for s in 0..n {
        for d in 0..n {
            if s != d {
                mp_ghosts.push(mp.send(s, d, ((s + d) % 8) as u64));
            }
        }
    }
    assert!(mp.run_to_quiescence(10_000_000));
    for g in &mp_ghosts {
        assert_eq!(mp.deliveries_of(*g), 1);
    }
}

/// Same workload from corrupted starts: both models survive.
#[test]
fn both_models_survive_corruption() {
    for seed in 0..4 {
        let graph = gen::grid(2, 3);
        let n = graph.n();

        let mut sm = Network::new(graph.clone(), NetworkConfig::adversarial(seed));
        let mut mp = PortNetwork::new(
            graph,
            MpConfig {
                seed,
                timeout_bias: 0.3,
            },
            true,
            10,
            16,
            2,
        );
        let mut sm_ghosts = Vec::new();
        let mut mp_ghosts = Vec::new();
        for s in 0..n {
            sm_ghosts.push(sm.send(s, (s + 3) % n, s as u64 % 8));
            mp_ghosts.push(mp.send(s, (s + 3) % n, s as u64 % 8));
        }
        assert!(sm.run_to_quiescence(20_000_000), "seed {seed}");
        assert!(mp.run_to_quiescence(20_000_000), "seed {seed}");
        for g in &sm_ghosts {
            assert_eq!(sm.deliveries_of(*g), 1, "state model, seed {seed}");
        }
        for g in &mp_ghosts {
            assert_eq!(mp.deliveries_of(*g), 1, "mp port, seed {seed}");
        }
        assert!(sm.check_sp().is_empty());
        let audit = mp.audit();
        assert_eq!(audit.lost + audit.duplicated, 0, "seed {seed}: {audit:?}");
    }
}

/// The port's wire cost: each hop needs Offer+Accept+Confirm (+ possible
/// retransmissions), so delivered wire messages are at least 3× the
/// state-model's per-hop moves for the same route. Sanity-check the
/// overhead is real but bounded.
#[test]
fn port_wire_overhead_is_bounded() {
    let graph = gen::line(5);
    let mut mp = PortNetwork::new(
        graph,
        MpConfig {
            seed: 8,
            timeout_bias: 0.3,
        },
        false,
        0,
        0,
        0,
    );
    let g = mp.send(0, 4, 1);
    assert!(mp.run_to_quiescence(1_000_000));
    assert_eq!(mp.deliveries_of(g), 1);
    let wire = mp.net().delivered_msgs();
    // 4 hops × 3 handshake messages = 12 minimum; retransmissions add
    // more but the total must stay within a small multiple.
    assert!(wire >= 12, "wire messages {wire} below handshake minimum");
    assert!(wire <= 600, "wire messages {wire} unreasonably high");
}
