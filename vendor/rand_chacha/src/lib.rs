//! Offline API stand-in for the `rand_chacha` crate.
//!
//! The workspace uses `ChaCha8Rng` purely as a *seedable, deterministic,
//! portable* simulation generator — no cryptographic property is relied
//! upon anywhere. Since the build environment has no registry access, this
//! vendored crate keeps the type name and trait surface
//! (`SeedableRng<Seed = [u8; 32]>` + `RngCore`) but backs it with
//! xoshiro256++: different stream than real ChaCha8, same contract.

use rand::{RngCore, SeedableRng};

/// Deterministic seedable generator with the `rand_chacha::ChaCha8Rng`
/// API surface (xoshiro256++ behind the name; see crate docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    s: [u64; 4],
}

impl ChaCha8Rng {
    fn advance(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        (self.advance() >> 32) as u32
    }
    fn next_u64(&mut self) -> u64 {
        self.advance()
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, w) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *w = u64::from_le_bytes(bytes);
        }
        if s == [0; 4] {
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        ChaCha8Rng { s }
    }
}

/// Alias kept for drop-in compatibility with code written against the
/// larger-round variants (identical backing generator here).
pub type ChaCha12Rng = ChaCha8Rng;
/// See [`ChaCha12Rng`].
pub type ChaCha20Rng = ChaCha8Rng;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let mut b = ChaCha8Rng::seed_from_u64(5);
        let mut c = ChaCha8Rng::seed_from_u64(6);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn usable_through_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let v: usize = rng.gen_range(0..10);
        assert!(v < 10);
        let _: u64 = rng.gen();
    }

    #[test]
    fn all_zero_seed_is_not_degenerate() {
        let mut rng = ChaCha8Rng::from_seed([0u8; 32]);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert!(a != 0 || b != 0);
    }
}
