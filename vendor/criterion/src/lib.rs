//! Offline API stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no registry access, so this vendored crate
//! keeps the workspace's benches compiling and running: same macro and
//! builder surface (`criterion_group!`, `criterion_main!`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`), but measurement is a simple mean over a capped number
//! of timed iterations printed to stdout — no warm-up statistics,
//! outlier analysis, or HTML reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Per-iteration timing callback target.
pub struct Bencher {
    sample_size: usize,
    /// Mean duration of one iteration, recorded by [`Bencher::iter`].
    elapsed_per_iter: Option<Duration>,
}

impl Bencher {
    /// Times `f`, storing the mean duration per call.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // One untimed call to warm caches and reach steady state.
        black_box(f());
        let iters = self.sample_size.clamp(1, 20) as u32;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.elapsed_per_iter = Some(start.elapsed() / iters);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark (capped at 20 in
    /// this stand-in).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Accepted for API compatibility; this stand-in does not time-box.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; warm-up is a single untimed call.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; throughput is not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        self.criterion.run_one(&full, self.sample_size, f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Throughput declaration (accepted, not reported).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let name = id.id.clone();
        self.run_one(&name, 10, f);
        self
    }

    fn run_one(&mut self, name: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            sample_size,
            elapsed_per_iter: None,
        };
        f(&mut b);
        match b.elapsed_per_iter {
            Some(d) => println!("bench: {name:<60} {:>12.1} ns/iter", d.as_nanos() as f64),
            None => println!("bench: {name:<60} (no iter() call)"),
        }
    }
}

/// Declares a group function running the given benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_bench_run() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(1));
        let mut ran = 0;
        group.bench_with_input(BenchmarkId::new("id", 4), &4u64, |b, &n| {
            b.iter(|| {
                ran += 1;
                black_box(n * 2)
            })
        });
        group.finish();
        assert!(ran > 0);
    }
}
