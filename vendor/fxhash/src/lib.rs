//! Vendored FxHash: the non-cryptographic multiply-rotate hasher used by
//! rustc (`rustc-hash`), reimplemented offline for this workspace.
//!
//! The build environment has no registry access, so — like the `rand` /
//! `proptest` / `criterion` shims next door — this crate provides an
//! API-compatible subset of the ecosystem crate. The checker's visited
//! sets hold billions of `u64` probes per exploration; SipHash's
//! per-lookup setup cost dominates there, while Fx is a handful of
//! arithmetic instructions. Fx is *not* DoS-resistant: it must only be
//! used for internal state hashing, never for attacker-controlled keys.
//!
//! Provided: [`FxHasher`], [`FxBuildHasher`], the [`FxHashMap`] /
//! [`FxHashSet`] aliases, and the one-shot [`hash64`] convenience.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hash, Hasher};

/// The Firefox/rustc hash constant (64-bit golden-ratio multiplier).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// A speed-oriented hasher: `hash = (hash <<< 5 ^ word) * SEED` per word.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            // Tag the tail with its length so "ab" and "ab\0" differ.
            self.add_to_hash(u64::from_le_bytes(buf) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` producing [`FxHasher`]s (zero-sized, `Default`).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// One-shot hash of any `Hash` value through [`FxHasher`].
#[inline]
pub fn hash64<T: Hash + ?Sized>(v: &T) -> u64 {
    let mut h = FxHasher::default();
    v.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_hashers() {
        assert_eq!(hash64(&42u64), hash64(&42u64));
        assert_eq!(hash64("hello"), hash64("hello"));
    }

    #[test]
    fn distinguishes_values_and_lengths() {
        assert_ne!(hash64(&1u64), hash64(&2u64));
        assert_ne!(hash64("ab"), hash64("ab\0"));
        assert_ne!(hash64(&[1u8, 2]), hash64(&[1u8, 2, 0]));
    }

    #[test]
    fn collections_work() {
        let mut set: FxHashSet<u64> = FxHashSet::default();
        assert!(set.insert(7));
        assert!(!set.insert(7));
        let mut map: FxHashMap<&str, u32> = FxHashMap::default();
        map.insert("k", 1);
        assert_eq!(map["k"], 1);
    }

    #[test]
    fn streams_equal_one_shot() {
        // write() in 8-byte chunks must agree with itself regardless of
        // chunk boundaries only when fed identically; sanity-pin a value.
        let mut h = FxHasher::default();
        h.write_u64(0xdead_beef);
        let a = h.finish();
        let mut h2 = FxHasher::default();
        h2.write_u64(0xdead_beef);
        assert_eq!(a, h2.finish());
        assert_ne!(a, 0);
    }
}
