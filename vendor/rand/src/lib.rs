//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors the *exact* surface it consumes: [`RngCore`],
//! [`SeedableRng`], and the [`Rng`] extension trait with `gen`,
//! `gen_range` and `gen_bool`. Statistical quality matches the backing
//! generator supplied by the `rand_chacha` compat crate (xoshiro256++),
//! which is more than adequate for simulation workloads; nothing here is
//! suitable for cryptography.

use std::ops::{Range, RangeInclusive};

/// Core infallible generator interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator seedable from a fixed-size seed or a `u64` (subset of
/// `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Seed type (e.g. `[u8; 32]`).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (the same scheme
    /// `rand` 0.8 uses) and builds the generator from it.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut sm).to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&word[..len]);
        }
        Self::from_seed(seed)
    }
}

/// One SplitMix64 step: advances `state` and returns the next output.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types producible by [`Rng::gen`] (stand-in for sampling from `Standard`).
pub trait Standard: Sized {
    /// Draws one uniformly random value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience extension methods over any [`RngCore`] (subset of
/// `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniformly random value in `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`; `p >= 1` always
    /// yields `true`, `p <= 0` always `false`).
    fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            true
        } else if p <= 0.0 {
            false
        } else {
            f64::sample(self) < p
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Minimal `rand::rngs` stand-in.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small fast xoshiro256++ generator (API stand-in for
    /// `rand::rngs::SmallRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        pub(crate) fn advance(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.advance() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.advance()
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];
        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, w) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *w = u64::from_le_bytes(bytes);
            }
            if s == [0; 4] {
                // The all-zero state is a fixed point; nudge it.
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u8 = rng.gen_range(0..=5);
            assert!(w <= 5);
            let x: i64 = rng.gen_range(-10..10);
            assert!((-10..10).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(rng.gen_bool(1.0));
            assert!(!rng.gen_bool(0.0));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = SmallRng::seed_from_u64(11);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn f64_samples_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(13);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
