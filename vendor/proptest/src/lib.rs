//! Offline API-compatible subset of the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the exact surface its property tests use: the [`proptest!`] macro with
//! `#![proptest_config(...)]`, strategies over integer ranges, tuples,
//! [`strategy::Just`], [`collection::vec`], [`any`], `prop_map`,
//! [`prop_oneof!`], and the `prop_assert*` macros.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking** — a failing case panics with the generated values
//!   formatted into the assertion message instead of a minimized input.
//! * **Deterministic seeding** — each test derives its RNG seed from its
//!   module path and name (FNV-1a), so failures reproduce across runs and
//!   machines.
//! * `prop_assert!`/`prop_assert_eq!` are plain `assert!`/`assert_eq!`
//!   (they panic instead of returning `Err`), which is equivalent under
//!   the standard test harness.

pub mod strategy;

pub mod collection {
    //! Strategies for collections (subset: `vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Size specification for [`vec`]: a fixed size or a range of sizes.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element` and
    /// whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.rng().gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Types with a canonical uniform strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
                rand::Rng::gen::<$t>(rng.rng())
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

/// The full-range strategy for `T` (subset of `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> strategy::AnyStrategy<T> {
    strategy::AnyStrategy(std::marker::PhantomData)
}

pub mod prelude {
    //! Everything a property test needs in scope.
    pub use crate::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Asserts a condition inside a [`proptest!`] body (panics on failure; no
/// shrinking in this offline subset).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skips the current case when the assumption does not hold. (The offline
/// subset simply moves on to the next case without replacement, so heavy
/// use of assumptions reduces the effective case count.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

/// Uniform choice among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        // Weights are accepted for API compatibility but treated as equal.
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($strat)),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($strat)),+])
    };
}

/// Declares property tests. Supports the standard shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]
///     #[test]
///     fn my_property(x in 0usize..10, (a, b) in (0u64..5, any::<bool>())) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg_pat:pat_param in $arg_strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for __case in 0..config.cases {
                $(
                    let $arg_pat =
                        $crate::strategy::Strategy::new_value(&($arg_strat), &mut rng);
                )+
                $body
            }
        }
    )*};
}

pub mod test_runner {
    //! Test configuration and the deterministic test RNG.

    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Runner configuration (subset of `proptest::test_runner::Config`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases each property runs.
        pub cases: u32,
        /// Accepted for API compatibility; unused (no shrinking here).
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }

    /// The RNG handed to strategies, seeded deterministically per test.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        rng: ChaCha8Rng,
    }

    impl TestRng {
        /// Seeds from a test identifier (FNV-1a over the name): stable
        /// across runs and machines, distinct across tests.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng {
                rng: ChaCha8Rng::seed_from_u64(h),
            }
        }

        /// The backing generator.
        pub fn rng(&mut self) -> &mut ChaCha8Rng {
            &mut self.rng
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u64> {
        (0u64..100).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in 0u8..=5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 5);
        }

        #[test]
        fn tuples_and_any((a, b, c) in (0u64..5, any::<u16>(), any::<bool>())) {
            prop_assert!(a < 5);
            let _ = (b, c);
        }

        #[test]
        fn vec_respects_size(v in crate::collection::vec(0u64..10, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn prop_map_applies(x in arb_even()) {
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn oneof_picks_all_branches(x in prop_oneof![Just(1u8), Just(2u8), Just(3u8)]) {
            prop_assert!((1..=3).contains(&x));
        }

        #[test]
        fn assume_skips(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert!(x != 3);
        }
    }

    #[test]
    fn deterministic_rng_is_stable_per_name() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let s = 0u64..1_000_000;
        assert_eq!(s.new_value(&mut a), s.new_value(&mut b));
    }
}
