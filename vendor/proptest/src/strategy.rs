//! The [`Strategy`] trait and combinators (offline subset: generation
//! without shrinking).

use crate::test_runner::TestRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A generator of values for property tests. Unlike real proptest there is
/// no value tree: `new_value` draws a fresh value and failures are not
/// shrunk.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates from `self`, then from the strategy `f` returns.
    fn prop_flat_map<U: Strategy, F: Fn(Self::Value) -> U>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Retries until `f` accepts a value (up to an internal cap).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.new_value(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> V>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Strategy, F: Fn(S::Value) -> U> Strategy for FlatMap<S, F> {
    type Value = U::Value;
    fn new_value(&self, rng: &mut TestRng) -> U::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive values: {}",
            self.whence
        );
    }
}

/// Uniform choice among type-erased strategies (see [`crate::prop_oneof!`]).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<V> Union<V> {
    /// Builds a union over `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        let i = rng.rng().gen_range(0..self.options.len());
        self.options[i].new_value(rng)
    }
}

/// The strategy behind [`crate::any`].
pub struct AnyStrategy<T>(pub(crate) PhantomData<fn() -> T>);

impl<T> Clone for AnyStrategy<T> {
    fn clone(&self) -> Self {
        AnyStrategy(PhantomData)
    }
}

impl<T: crate::Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        rng.rng().gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
}
