//! # ssmfp — snap-stabilizing message forwarding, executable
//!
//! Umbrella crate for the reproduction of *“A snap-stabilizing
//! point-to-point communication protocol in message-switched networks”*
//! (Cournier, Dubois, Villain — IPPS 2009). It re-exports the workspace
//! crates under stable module names:
//!
//! * [`topology`] — identified network graphs, generators, metrics, `T_d`.
//! * [`kernel`] — the §2.1 state-model engine: protocols, daemons, rounds.
//! * [`routing`] — the self-stabilizing silent routing algorithm `A`.
//! * [`buffer_graph`] — Merlin–Schweitzer buffer graphs and controllers.
//! * [`core`] — the `SSMFP` protocol itself (rules R1–R6), the baseline,
//!   invariant monitors, the high-level [`core::Network`] API.
//! * [`analysis`] — experiment harness regenerating every figure and
//!   proposition of the paper.
//! * [`mp`] — the exploratory message-passing port of §4's closing open
//!   problem (asynchronous FIFO-channel simulator + three-way-handshake
//!   forwarding).
//! * [`check`] — exhaustive bounded model checker: verifies safety over
//!   **all** central-daemon schedules on small instances, including the
//!   machine-checked counterexample behind the R5 deviation.
//!
//! ## Quickstart
//!
//! ```
//! use ssmfp::core::{Network, NetworkConfig};
//! use ssmfp::topology::gen;
//!
//! // A ring of 6 processors with *corrupted* initial routing tables and
//! // garbage in half the buffers — the worst legal starting point.
//! let graph = gen::ring(6);
//! let mut net = Network::new(graph, NetworkConfig::adversarial(42));
//! let msg = net.send(0, 3, 0xC0FFEE);
//! net.run_until_delivered(msg, 1_000_000).expect("snap-stabilization");
//! assert_eq!(net.deliveries_of(msg), 1); // once and only once
//! assert!(net.check_sp().is_empty());
//! ```

pub use ssmfp_analysis as analysis;
pub use ssmfp_buffer_graph as buffer_graph;
pub use ssmfp_check as check;
pub use ssmfp_core as core;
pub use ssmfp_kernel as kernel;
pub use ssmfp_mp as mp;
pub use ssmfp_routing as routing;
pub use ssmfp_topology as topology;
